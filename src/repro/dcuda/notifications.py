"""Device-side notification matching (§III-C, "Notification Matching").

The matcher consumes the rank's notification queue.  Matching runs in order
of arrival; matched notifications are removed and the queue is compacted, so
mismatched entries stay for later waits.  ``wait`` and ``test`` filter on
window id, source rank, and tag, each of which may be a wildcard.

Matching is **compute heavy** in the real system (eight threads doing
coalesced reads and shuffle reductions): every pass charges the block's SM
*issue unit* for a base cost plus a per-scanned-entry cost.  Because the
issue unit is shared with application compute, heavy matching steals compute
throughput — the paper's explanation for the slightly imperfect overlap of
compute-bound workloads (Fig. 7).

Wall-clock vs simulated cost: the *charged* cost of a pass is always
``match_base + match_per_entry × |pending|`` — the simulated device scans
its whole queue, exactly as before.  The host-side implementation, however,
keeps the pending set indexed (a dict keyed by the full ``(win_id, source,
tag)`` triple, one keyed by ``(win_id, tag)`` for the ubiquitous
any-source waits, plus an insertion-ordered fallback map for other
wildcard patterns), so finding the matches costs O(matches) wall-clock
instead of rebuilding the whole list per pass.  Simulated timestamps are
bit-identical either way; only the simulator got faster.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Generator, Tuple

from ..errors import DCudaTimeoutError
from ..hw.config import DeviceLibConfig
from ..hw.gpu import Block, Device
from ..runtime.commands import Notification
from ..runtime.state import RankState
from ..sim import PENDING, AnyOf, Event

__all__ = ["NotificationMatcher", "deliver", "deliver_bulk",
           "DCUDA_ANY_SOURCE", "DCUDA_ANY_TAG", "DCUDA_ANY_WINDOW"]

DCUDA_ANY_SOURCE = -1
DCUDA_ANY_TAG = -1
DCUDA_ANY_WINDOW = -1


def deliver(state: RankState, global_win_id, source: int,
            tag: int) -> Generator[Event, Any, None]:
    """Enqueue one notification on *state*'s queue.

    The single delivery point shared by every communication backend (and
    the block manager): translates the global window id to the owner's
    local id and enqueues the :class:`Notification` the matcher consumes.
    Who *calls* it differs per backend — the host block manager (proxy),
    the NIC completion path (device-initiated), or the triggered-op
    engine (stream) — but the queue entry, and therefore everything the
    matcher can observe, is identical.

    Returns the enqueue generator directly (``yield from deliver(...)``
    drives it with one less frame than a delegating generator would).
    """
    local_win = state.win_reverse[global_win_id]
    return state.notif_queue.enqueue(
        Notification(local_win, source, tag))


def deliver_bulk(state: RankState,
                 notifications: Any) -> Generator[Event, Any, None]:
    """Enqueue several ``(global_win_id, source, tag)`` notifications.

    The bulk twin of :func:`deliver` for same-timestamp delivery runs
    (e.g. a collective fan-in committing one notification per peer):
    per-entry queue semantics — credits, posted writes, visibility delays
    — are exactly those of back-to-back :func:`deliver` calls, so the
    matcher observes identical timestamps; the batch just shares one
    generator frame, and the matcher's next drain consumes the whole run
    in one pass (wake coalescing: only the first commit wakes a parked
    matcher).
    """
    win_reverse = state.win_reverse
    return state.notif_queue.enqueue_bulk(
        Notification(win_reverse[gid], source, tag)
        for gid, source, tag in notifications)


class _Entry:
    """One pending notification plus its liveness flag.

    Entries sit in several index buckets at once; consuming one via any
    index flips ``alive`` and the other buckets skip it lazily.

    ``refs`` counts the index buckets still holding the entry (always two
    at creation: the exact-triple bucket and the any-source bucket).  A
    dead entry is recycled through the matcher's freelist only once every
    bucket has lazily popped it — an entry still reachable from a bucket
    must never be reused, or a stale bucket would consume a notification
    that was never delivered to it.
    """

    __slots__ = ("notification", "alive", "refs")

    def __init__(self, notification: Notification):
        self.notification = notification
        self.alive = True
        self.refs = 2


class NotificationMatcher:
    """Per-rank notification queue consumer."""

    #: Test hook: force every pass through the wildcard scan fallback.
    #: Charged cost and matching order must not depend on this flag — the
    #: parity test asserts exactly that.
    _force_scan = False

    def __init__(self, state: RankState, device: Device, block: Block,
                 cfg: DeviceLibConfig):
        self.state = state
        self.device = device
        self.block = block
        self.cfg = cfg
        self.env = state.env
        # Observability: matching-pass cost and wait-latency histograms,
        # shared across ranks (or None when disabled).
        obs = state.node.obs
        use_hists = bool(obs) and obs.cfg.latency_histograms
        self._match_hist = obs.latency_histogram("ntf.match_pass") \
            if use_hists else None
        self._wait_hist = obs.latency_histogram("ntf.wait") \
            if use_hists else None
        #: Arrival counter; keys the insertion-ordered fallback map.
        self._arrival_seq = 0
        #: Arrived-but-unmatched entries in arrival order (dicts preserve
        #: insertion order; deletion keeps it) — the wildcard fallback.
        self._ordered: Dict[int, _Entry] = {}
        #: Exact-triple index: (win_id, source, tag) -> arrival-ordered run.
        self._by_full: Dict[Tuple[int, int, int], Deque[_Entry]] = {}
        #: Any-source index: (win_id, tag) -> arrival-ordered run.
        self._by_win_tag: Dict[Tuple[int, int], Deque[_Entry]] = {}
        #: Total notifications ever matched (statistics).
        self.matched_total = 0
        #: Enqueue count at the last drain — detects arrivals that land
        #: while a charged matching pass is occupying the issue unit, which
        #: would otherwise be lost wakeups.
        self._drained_at = 0
        #: Freelist of retired _Entry carriers (see _Entry.refs).
        self._efree: list = []

    # -- internals ------------------------------------------------------
    def _drain(self) -> None:
        """Move arrived queue entries into the local pending indexes.

        Batched: the queue hands over everything it buffered in one pass
        (same entries, order, and bookkeeping as the old per-entry
        ``try_dequeue`` loop).
        """
        queue = self.state.notif_queue
        items = queue.drain_all()
        self._drained_at = queue.stats.enqueues
        if not items:
            return
        seq = self._arrival_seq
        ordered = self._ordered
        by_full = self._by_full
        by_win_tag = self._by_win_tag
        free = self._efree
        for n in items:
            if free:
                entry = free.pop()
                entry.notification = n
                entry.alive = True
                entry.refs = 2
            else:
                entry = _Entry(n)
            seq += 1
            ordered[seq] = entry
            full = by_full.get((n.win_id, n.source, n.tag))
            if full is None:
                full = by_full[(n.win_id, n.source, n.tag)] = deque()
            full.append(entry)
            wt = by_win_tag.get((n.win_id, n.tag))
            if wt is None:
                wt = by_win_tag[(n.win_id, n.tag)] = deque()
            wt.append(entry)
        self._arrival_seq = seq

    @staticmethod
    def _matches(n: Notification, win_id: int, source: int, tag: int) -> bool:
        return ((win_id == DCUDA_ANY_WINDOW or n.win_id == win_id)
                and (source == DCUDA_ANY_SOURCE or n.source == source)
                and (tag == DCUDA_ANY_TAG or n.tag == tag))

    def _consume_indexed(self, bucket: Deque[_Entry], needed: int) -> int:
        """Consume up to *needed* live entries from an index bucket."""
        consumed = 0
        free = self._efree
        while bucket and consumed < needed:
            entry = bucket[0]
            bucket.popleft()
            if not entry.alive:
                # Lazy cleanup of an entry consumed via another index;
                # once no bucket holds it anymore it can be recycled.
                entry.refs -= 1
                if entry.refs == 0:
                    entry.notification = None
                    free.append(entry)
                continue
            entry.alive = False
            entry.refs -= 1
            consumed += 1
        return consumed

    def _consume_scan(self, win_id: int, source: int, tag: int,
                      needed: int) -> int:
        """Wildcard fallback: scan the insertion-ordered pending map."""
        consumed = 0
        matches = self._matches
        for entry in self._ordered.values():
            if consumed >= needed:
                break
            if entry.alive and matches(entry.notification,
                                       win_id, source, tag):
                entry.alive = False
                consumed += 1
        return consumed

    def _compact(self) -> None:
        """Drop consumed entries from the ordered map (keeps it a faithful
        image of the simulated queue after the pass compacts it)."""
        dead = [seq for seq, e in self._ordered.items() if not e.alive]
        for seq in dead:
            del self._ordered[seq]

    def _match_sync(self, win_id: int, source: int, tag: int,
                    needed: int) -> Tuple[int, float]:
        """The synchronous half of a matching pass: drain, consume, and
        compute the charged cost; returns ``(consumed, cost)``.

        The simulated device always scans every pending entry, so the
        charged cost uses ``len(self._ordered)`` — the same scanned-entry
        count the compacting-list implementation charged.  The caller owns
        the issue-unit charge (and bumps ``matched_total`` after it), so
        the hot wait loop can inline the resource hold.
        """
        self._drain()
        scanned = len(self._ordered)
        if (not self._force_scan and win_id != DCUDA_ANY_WINDOW
                and tag != DCUDA_ANY_TAG):
            if source != DCUDA_ANY_SOURCE:
                bucket = self._by_full.get((win_id, source, tag))
            else:
                bucket = self._by_win_tag.get((win_id, tag))
            consumed = (self._consume_indexed(bucket, needed)
                        if bucket is not None else 0)
        else:
            consumed = self._consume_scan(win_id, source, tag, needed)
        if consumed:
            self._compact()
        cost = self.cfg.match_base + self.cfg.match_per_entry * scanned
        if self._match_hist is not None:
            self._match_hist.observe(cost)
        return consumed, cost

    def _match_pass(self, win_id: int, source: int, tag: int,
                    needed: int) -> Generator[Event, Any, int]:
        """One charged scan over the pending set; returns matches consumed."""
        consumed, cost = self._match_sync(win_id, source, tag, needed)
        yield from self.device.issue_use(self.block, cost, kind="match")
        self.matched_total += consumed
        return consumed

    @property
    def _pending(self) -> list:
        """Live pending notifications in arrival order (the simulated
        queue image; kept for tests that assert on matching order)."""
        return [e.notification for e in self._ordered.values() if e.alive]

    @_pending.setter
    def _pending(self, notifications) -> None:
        """Replace the pending set (test injection point); rebuilds the
        indexes exactly as arrivals via :meth:`_drain` would."""
        self._ordered.clear()
        self._by_full.clear()
        self._by_win_tag.clear()
        for n in notifications:
            entry = _Entry(n)
            self._arrival_seq += 1
            self._ordered[self._arrival_seq] = entry
            self._by_full.setdefault((n.win_id, n.source, n.tag),
                                     deque()).append(entry)
            self._by_win_tag.setdefault((n.win_id, n.tag),
                                        deque()).append(entry)

    # -- public API ------------------------------------------------------
    def pending_count(self) -> int:
        """Arrived-but-unmatched notifications (drains the queue first)."""
        self._drain()
        return len(self._ordered)

    def test(self, win_id: int = DCUDA_ANY_WINDOW,
             source: int = DCUDA_ANY_SOURCE, tag: int = DCUDA_ANY_TAG,
             count: int = 1) -> Generator[Event, Any, int]:
        """Single matching pass; consumes and returns up to *count* matches
        without blocking (dcuda_test_notifications)."""
        if count < 0:
            raise ValueError(f"negative notification count {count!r}")
        if count == 0:
            return 0
        consumed = yield from self._match_pass(win_id, source, tag, count)
        return consumed

    def wait(self, win_id: int = DCUDA_ANY_WINDOW,
             source: int = DCUDA_ANY_SOURCE, tag: int = DCUDA_ANY_TAG,
             count: int = 1,
             detail: str = "") -> Generator[Event, Any, None]:
        """Block until *count* matching notifications were consumed
        (dcuda_wait_notifications).

        Raises:
            ValueError: *count* is negative.
            DCudaTimeoutError: a fault plane is attached and no matching
                notification arrived within its ``handshake_timeout``.
        """
        if count < 0:
            raise ValueError(f"negative notification count {count!r}")
        t0 = self.env._now
        faults = getattr(self.state.node, "faults", None)
        deadline = (t0 + faults.cfg.handshake_timeout
                    if faults is not None else None)
        tracer = self.device.tracer
        issue = self.block.sm.issue
        sem = issue._sem
        matched = 0
        while matched < count:
            consumed, cost = self._match_sync(win_id, source, tag,
                                              count - matched)
            if tracer.enabled:
                yield from self.device.issue_use(self.block, cost,
                                                 kind="match")
            else:
                # Inlined issue.use(cost) — the per-pass match charge is
                # the hot wait path's only resource hold, and the resumes
                # land on this frame directly instead of two frames down.
                if sem._available > 0 and not sem._queue:
                    sem._available -= 1
                    yield 0.0
                else:
                    free = sem._efree
                    if free:
                        ev = free.pop()
                        ev.callbacks = []
                        ev._value = PENDING
                        ev._scheduled = False
                    else:
                        ev = Event(sem.env, sem._req_name)
                    sem._queue.append(ev)
                    yield ev
                    free.append(ev)
                try:
                    issue.busy_time += cost
                    issue.uses += 1
                    yield cost
                finally:
                    sem.release()
            self.matched_total += consumed
            matched += consumed
            if matched >= count:
                break
            if self.state.notif_queue.stats.enqueues > self._drained_at:
                # New notifications arrived while the matching pass was
                # running; rescan immediately instead of sleeping.
                continue
            # Nothing (or not enough) matched: sleep until the next arrival,
            # then continue on the following poll boundary.  The SM issue
            # unit is free during the sleep — this is where over-subscribed
            # blocks overlap their communication.
            if deadline is None:
                queue = self.state.notif_queue
                if queue._park_proc is None:
                    # Poll elision: one wake at commit + poll_interval —
                    # the exact tick the arrival-signal + poll-boundary
                    # sequence below would have rescanned at.
                    yield queue.park_poll(self.cfg.poll_interval)
                    continue
                # Another consumer already parked on this queue (rare):
                # fall back to the signal + poll-boundary sleep.
                yield queue.arrived.wait()
            else:
                remaining = deadline - self.env._now
                if remaining <= 0:
                    raise DCudaTimeoutError(
                        f"wait_notifications(win={win_id}, source={source}, "
                        f"tag={tag}): {matched}/{count} matched within "
                        f"{faults.cfg.handshake_timeout:.3e}s simulated",
                        rank=self.state.world_rank, sim_time=self.env._now)
                arrival = self.state.notif_queue.arrived.wait()
                timer = self.env.timeout(remaining)
                which = yield AnyOf(self.env, [arrival, timer])
                if which[0] == 0 or arrival.triggered:
                    timer.abandoned = True
                if which[0] == 1 and not arrival.triggered:
                    arrival.abandoned = True
                    raise DCudaTimeoutError(
                        f"wait_notifications(win={win_id}, source={source}, "
                        f"tag={tag}): {matched}/{count} matched within "
                        f"{faults.cfg.handshake_timeout:.3e}s simulated",
                        rank=self.state.world_rank, sim_time=self.env._now)
            yield self.cfg.poll_interval
        if self._wait_hist is not None:
            self._wait_hist.observe(self.env._now - t0)
        if tracer.enabled:
            tracer.record(self.block.name, "wait", t0, self.env._now,
                          detail or "notifications")
