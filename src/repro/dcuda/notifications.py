"""Device-side notification matching (§III-C, "Notification Matching").

The matcher consumes the rank's notification queue.  Matching runs in order
of arrival; matched notifications are removed and the queue is compacted, so
mismatched entries stay for later waits.  ``wait`` and ``test`` filter on
window id, source rank, and tag, each of which may be a wildcard.

Matching is **compute heavy** in the real system (eight threads doing
coalesced reads and shuffle reductions): every pass charges the block's SM
*issue unit* for a base cost plus a per-scanned-entry cost.  Because the
issue unit is shared with application compute, heavy matching steals compute
throughput — the paper's explanation for the slightly imperfect overlap of
compute-bound workloads (Fig. 7).
"""

from __future__ import annotations

from typing import Any, Generator, List

from ..hw.config import DeviceLibConfig
from ..hw.gpu import Block, Device
from ..runtime.commands import Notification
from ..runtime.state import RankState
from ..sim import Event

__all__ = ["NotificationMatcher", "DCUDA_ANY_SOURCE", "DCUDA_ANY_TAG",
           "DCUDA_ANY_WINDOW"]

DCUDA_ANY_SOURCE = -1
DCUDA_ANY_TAG = -1
DCUDA_ANY_WINDOW = -1


class NotificationMatcher:
    """Per-rank notification queue consumer."""

    def __init__(self, state: RankState, device: Device, block: Block,
                 cfg: DeviceLibConfig):
        self.state = state
        self.device = device
        self.block = block
        self.cfg = cfg
        self.env = state.env
        #: Arrived-but-unmatched notifications, in arrival order.
        self._pending: List[Notification] = []
        #: Total notifications ever matched (statistics).
        self.matched_total = 0
        #: Enqueue count at the last drain — detects arrivals that land
        #: while a charged matching pass is occupying the issue unit, which
        #: would otherwise be lost wakeups.
        self._drained_at = 0

    # -- internals ------------------------------------------------------
    def _drain(self) -> None:
        """Move arrived queue entries into the local pending list."""
        while True:
            entry = self.state.notif_queue.try_dequeue()
            if entry is None:
                self._drained_at = self.state.notif_queue.stats.enqueues
                return
            self._pending.append(entry)

    @staticmethod
    def _matches(n: Notification, win_id: int, source: int, tag: int) -> bool:
        return ((win_id == DCUDA_ANY_WINDOW or n.win_id == win_id)
                and (source == DCUDA_ANY_SOURCE or n.source == source)
                and (tag == DCUDA_ANY_TAG or n.tag == tag))

    def _match_pass(self, win_id: int, source: int, tag: int,
                    needed: int) -> Generator[Event, Any, int]:
        """One charged scan over the pending list; returns matches consumed."""
        self._drain()
        scanned = len(self._pending)
        kept: List[Notification] = []
        consumed = 0
        for n in self._pending:
            if consumed < needed and self._matches(n, win_id, source, tag):
                consumed += 1
            else:
                kept.append(n)
        self._pending = kept
        cost = self.cfg.match_base + self.cfg.match_per_entry * scanned
        yield from self.device.issue_use(self.block, cost, kind="match")
        self.matched_total += consumed
        return consumed

    # -- public API ------------------------------------------------------
    def pending_count(self) -> int:
        """Arrived-but-unmatched notifications (drains the queue first)."""
        self._drain()
        return len(self._pending)

    def test(self, win_id: int = DCUDA_ANY_WINDOW,
             source: int = DCUDA_ANY_SOURCE, tag: int = DCUDA_ANY_TAG,
             count: int = 1) -> Generator[Event, Any, int]:
        """Single matching pass; consumes and returns up to *count* matches
        without blocking (dcuda_test_notifications)."""
        if count < 0:
            raise ValueError(f"negative notification count {count!r}")
        if count == 0:
            return 0
        consumed = yield from self._match_pass(win_id, source, tag, count)
        return consumed

    def wait(self, win_id: int = DCUDA_ANY_WINDOW,
             source: int = DCUDA_ANY_SOURCE, tag: int = DCUDA_ANY_TAG,
             count: int = 1,
             detail: str = "") -> Generator[Event, Any, None]:
        """Block until *count* matching notifications were consumed
        (dcuda_wait_notifications)."""
        if count < 0:
            raise ValueError(f"negative notification count {count!r}")
        t0 = self.env.now
        matched = 0
        while matched < count:
            matched += yield from self._match_pass(win_id, source, tag,
                                                   count - matched)
            if matched >= count:
                break
            if self.state.notif_queue.stats.enqueues > self._drained_at:
                # New notifications arrived while the matching pass was
                # running; rescan immediately instead of sleeping.
                continue
            # Nothing (or not enough) matched: sleep until the next arrival,
            # then continue on the following poll boundary.  The SM issue
            # unit is free during the sleep — this is where over-subscribed
            # blocks overlap their communication.
            yield self.state.notif_queue.arrived.wait()
            yield self.env.timeout(self.cfg.poll_interval)
        self.device.tracer.record(self.block.name, "wait", t0, self.env.now,
                                  detail or "notifications")
