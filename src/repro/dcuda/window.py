"""Device-side window handles and the global address space.

A window maps ``(rank, window, offset)`` tuples to distributed memory
(§II-C).  Each participating rank registers a local 1-D numpy buffer;
windows of shared-memory ranks may overlap (the mini-applications exploit
this: neighbouring same-device ranks register views into one device array,
so their "halo exchange" is the no-copy case the paper optimizes out).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["Window", "same_memory"]


def same_memory(a: np.ndarray, b: np.ndarray) -> bool:
    """True when *a* and *b* alias the exact same memory range.

    This is the paper's zero-copy test: a shared-memory put whose source
    and target addresses coincide performs no data movement.

    Args:
        a: First array.
        b: Second array.

    Returns:
        ``True`` iff both arrays share base pointer, element size, total
        size, and strides.
    """
    if a.size != b.size or a.itemsize != b.itemsize:
        return False
    # ctypes.data is the same base pointer __array_interface__["data"][0]
    # exposes, without materialising the interface dict on every call.
    return (a.ctypes.data == b.ctypes.data and a.strides == b.strides)


class Window:
    """A rank's handle to a created window (§II-C).

    Returned by :meth:`~repro.dcuda.device_api.DRank.win_create`; pass it
    to the RMA calls (``put_notify``, ``get``, …) and release it with
    ``win_free``.

    Attributes:
        local_id: Device-local window id (per-rank namespace).
        global_id: Globally valid id assigned by the runtime (§III-B).
        comm_name: Communicator the window was created over.
        owner_rank: World rank holding this handle.
        buffer: The registered local 1-D numpy buffer.
        participants: World ranks participating in the window.
    """

    __slots__ = ("local_id", "global_id", "comm_name", "owner_rank",
                 "buffer", "participants", "_last_flush_id")

    def __init__(self, local_id: int, global_id: Tuple[str, int],
                 comm_name: str, owner_rank: int, buffer: np.ndarray,
                 participants: Tuple[int, ...]):
        self.local_id = local_id
        self.global_id = global_id
        self.comm_name = comm_name
        self.owner_rank = owner_rank
        self.buffer = buffer
        self.participants = participants
        #: Highest flush id issued through this window (for win_flush).
        self._last_flush_id = 0

    @property
    def size(self) -> int:
        """Registered extent in elements."""
        return int(self.buffer.size)

    @property
    def dtype(self) -> np.dtype:
        """Element dtype of the registered buffer."""
        return self.buffer.dtype

    def check_target(self, target_rank: int, offset: int, count: int) -> None:
        """Validate an RMA target triple against this window.

        Args:
            target_rank: World rank addressed by the operation.
            offset: Element offset into the target's window region.
            count: Number of elements transferred.

        Raises:
            ValueError: *target_rank* is not a participant, or *offset* /
                *count* is negative.
        """
        if target_rank not in self.participants:
            raise ValueError(
                f"rank {target_rank} is not a participant of window "
                f"{self.global_id} (participants {self.participants})")
        if offset < 0 or count < 0:
            raise ValueError(
                f"negative window offset/count: {offset}/{count}")

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (f"<Window {self.global_id} rank={self.owner_rank} "
                f"size={self.size}>")
