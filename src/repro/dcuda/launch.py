"""Kernel launching: the dCUDA program entry point.

``launch`` packs the entire application in a single kernel invocation, as
dCUDA programs do: it builds the runtime system, spawns one process per
rank running the user kernel, and drives the simulation to completion.

A *kernel* is a callable ``kernel(rank: DRank, **kernel_args)`` returning a
generator.  Its return value is collected per rank.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..errors import DCudaFaultError, DCudaTimeoutError
from ..hw.cluster import Cluster
from ..hw.config import MachineConfig
from ..runtime.system import DCudaRuntime
from ..sim import Tracer
from .device_api import DRank

__all__ = ["launch", "LaunchResult"]


@dataclass
class LaunchResult:
    """Outcome of a dCUDA kernel launch."""

    #: Simulated wall-clock duration of the launch [s].
    elapsed: float
    #: Per-rank kernel return values, indexed by world rank.
    results: List[Any]
    #: The runtime system (for statistics inspection).
    runtime: DCudaRuntime
    #: Activity trace (enabled via ``MachineConfig.tracing``).
    tracer: Tracer
    #: ``rank.log`` records: (time, rank, message).
    log_records: List[Tuple[float, int, str]] = field(default_factory=list)


def launch(cluster: Union[Cluster, MachineConfig], kernel: Callable[..., Any],
           ranks_per_device: int,
           kernel_args: Optional[Dict[str, Any]] = None) -> LaunchResult:
    """Run *kernel* on every rank of the cluster; returns timing + results.

    *cluster* may be a built :class:`Cluster` or a bare
    :class:`MachineConfig`, which is wrapped in a fresh cluster (and hence
    a fresh simulation clock) automatically.

    The rank count per device is capped at the device's in-flight block
    limit — dCUDA's over-subscription rule (§II-B).

    With a fault plane attached (``MachineConfig.faults``) the run is
    guarded by a simulated-time watchdog: instead of hanging, a launch
    that outlives ``FaultsConfig.watchdog`` raises
    :class:`~repro.errors.DCudaTimeoutError` naming the unfinished ranks,
    and a diagnosed deadlock or non-quiescent runtime raises
    :class:`~repro.errors.DCudaFaultError`.

    Raises:
        DCudaTimeoutError: the simulated-time watchdog expired (faults
            attached only).
        DCudaFaultError: the run drained but rank processes or the runtime
            never completed, under fault injection.
        RuntimeError: same diagnosis without a fault plane (unchanged
            legacy behaviour).
    """
    if isinstance(cluster, MachineConfig):
        cluster = Cluster(cluster)
    faults = getattr(cluster, "faults", None)
    runtime = DCudaRuntime(cluster, ranks_per_device)
    runtime.start()
    args = kernel_args or {}
    t0 = cluster.env._now
    procs = []
    for world_rank in range(runtime.total_ranks):
        drank = DRank(runtime, world_rank)
        procs.append(cluster.env.process(kernel(drank, **args),
                                         name=f"kernel:r{world_rank}"))
    if faults is not None and faults.cfg.watchdog > 0:
        drained = cluster.env.run_watchdog(t0 + faults.cfg.watchdog)
        if not drained:
            unfinished = [p.name for p in procs if not p.triggered]
            raise DCudaTimeoutError(
                f"watchdog: simulated time exceeded "
                f"{faults.cfg.watchdog:.3e}s with "
                f"{len(unfinished)} rank(s) unfinished "
                f"({', '.join(unfinished) or 'runtime only'})",
                sim_time=cluster.env._now)
    else:
        cluster.run()
    for p in procs:
        if not p.triggered:
            message = f"deadlock: rank process {p.name} never completed"
            if faults is not None:
                raise DCudaFaultError(message, sim_time=cluster.env._now)
            raise RuntimeError(message)
    problems = runtime.check_quiescent()
    if problems:
        message = ("runtime not quiescent after launch: "
                   + "; ".join(problems))
        if faults is not None:
            raise DCudaFaultError(message, sim_time=cluster.env._now)
        raise RuntimeError(message)
    return LaunchResult(elapsed=cluster.env._now - t0,
                        results=[p.value for p in procs],
                        runtime=runtime, tracer=cluster.tracer,
                        log_records=runtime.log_records)
