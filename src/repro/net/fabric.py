"""Inter-node interconnect model.

A LogGP-flavoured cost model: each message pays a sender-side injection
overhead *o*, occupies the sender's NIC for its serialization time
``nbytes / bandwidth``, then arrives after the one-way latency *L*.
Concurrent messages from the same node serialize at the NIC, which yields
bandwidth sharing; on the default **flat** interconnect (full bisection,
as on a small fat-tree — the paper's 4x EDR InfiniBand on Greina),
messages from different nodes are independent.

Routed interconnects (``fat_tree`` / ``ring`` topologies, see
:mod:`repro.platform`) extend the model: after NIC injection the message
traverses **every hop link** on its shortest-path route.  Each directed
link is a virtual-time fluid-flow
:class:`~repro.sim.link.FairShareLink` — concurrent messages crossing
the same link share its bandwidth max-min fairly — and charges its own
per-hop latency, so fat-tree oversubscription and ring neighbor
congestion emerge from routing instead of being scripted.  Hop links are
labeled ``fabric.<edge>`` in the observability registry and can be cut
by ``faults.partition`` events targeting the edge name.

Two bandwidth classes model the CUDA-aware transfer paths the paper
discusses:

* ``mode="host"`` — host-staged transfer at the full link bandwidth
  (OpenMPI's choice above 30 kB "to achieve better bandwidth"),
* ``mode="d2d"``  — direct GPUDirect device-to-device RDMA at the
  (much lower) PCIe-read-limited bandwidth.

Intra-node transmissions (src == dst) take the node's intra-node link —
the legacy loopback constants by default, or the node class's
NVLink-class ``intra_link`` on dense nodes.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from ..sim import Environment, Event, Semaphore
from ..sim.link import FairShareLink
from ..hw.config import FabricConfig

__all__ = ["Fabric", "TRANSFER_MODES"]

TRANSFER_MODES = ("host", "d2d")

#: Legacy same-node loopback path; kept as module constants so a Fabric
#: built without a platform (unit tests, ad-hoc harnesses) behaves
#: exactly as before the platform layer existed.  With a platform these
#: come from each node's resolved ``intra_link``.
_LOOPBACK_LATENCY = 0.3e-6
_LOOPBACK_BANDWIDTH = 12.0e9


class _Nic:
    """Per-node injection port; serializes outgoing messages."""

    def __init__(self, env: Environment, index: int, obs: Any = None):
        self.lock = Semaphore(env, 1, name=f"nic{index}")
        self.bytes_injected = 0.0
        self.messages = 0
        # MMIO doorbell rings from device-initiated RMA (repro.comm's
        # ``device`` backend); the proxy path never rings — the host
        # posts work requests instead.
        self.doorbells = 0
        # Observability: messages currently queued or injecting at this
        # NIC (occupancy series) plus byte/message counters, or None.
        self.inflight = 0
        self.inflight_series = obs.link_series(
            f"fabric.nic{index}.inflight") if obs else None
        self.byte_counter = obs.link_counter(
            f"fabric.nic{index}.bytes") if obs else None
        self.msg_counter = obs.link_counter(
            f"fabric.nic{index}.messages") if obs else None


class _HopLink:
    """One directed topology edge: a fluid-shared link + hop latency."""

    __slots__ = ("name", "flow", "latency")

    def __init__(self, env: Environment, name: str, bandwidth: float,
                 latency: float, obs: Any, faults: Any):
        self.name = name
        # The FairShareLink registers `link.fabric.<edge>.*` metrics and
        # honours link_degrade fault windows targeting `fabric.<edge>`.
        self.flow = FairShareLink(env, bandwidth, name=f"fabric.{name}",
                                  obs=obs, faults=faults)
        self.latency = latency


class _RouteWalk:
    """Callback walker for the post-injection hop traversal of a routed
    message.

    Schedule-equivalent to the generator loop it replaces, entry for
    entry: the transfer-completion callback occupies the exact slot the
    process's resume callback held (``add_callback`` on an already
    processed transfer runs inline, matching the immediate-resume
    fallback), and each positive hop latency is charged through
    :meth:`Environment.call_at` — the same ``(when, priority, seq)``
    timed entry a ``yield hop.latency`` would create at that moment.
    Zero latencies and a zero extra-latency tail proceed inline, exactly
    as the generator's guarded yields did.  What it saves is the
    generator machinery itself: one process ``_step`` (send / frame
    switch / StopIteration plumbing) per hop event becomes one bound
    -method call.
    """

    __slots__ = ("env", "hops", "nbytes", "extra_latency", "done", "_idx")

    def __init__(self, env: Environment, hops: tuple, nbytes: float,
                 extra_latency: float, done: Event):
        self.env = env
        self.hops = hops
        self.nbytes = nbytes
        self.extra_latency = extra_latency
        self.done = done
        self._idx = 0

    def start(self) -> None:
        self._next()

    def _next(self) -> None:
        idx = self._idx
        hops = self.hops
        if idx < len(hops):
            self._idx = idx + 1
            ev = hops[idx].flow.transfer(self.nbytes)
            ev.add_callback(self._transferred)
            return
        extra = self.extra_latency
        if extra > 0.0:
            self.env.call_at(extra, self.done.succeed)
        else:
            self.done.succeed()

    def _transferred(self, ev: Event) -> None:
        latency = self.hops[self._idx - 1].latency
        if latency > 0.0:
            self.env.call_at(latency, self._next)
        else:
            self._next()


class Fabric:
    """The cluster interconnect."""

    def __init__(self, env: Environment, cfg: FabricConfig, num_nodes: int,
                 obs: Any = None, faults: Any = None, platform: Any = None):
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        self.env = env
        self.cfg = cfg
        self.num_nodes = num_nodes
        self._nics: List[_Nic] = [_Nic(env, i, obs)
                                  for i in range(num_nodes)]
        # Fault plane or None.  Wire transfers query it for partition
        # windows (hold until heal), burst loss (retransmit delay — the
        # message is never silently lost; reliability is re-established by
        # retransmission, the arrival is just late), and NIC degradation.
        self._faults = faults
        # Platform wiring: per-node intra-node (loopback) link specs and
        # the routed-interconnect table (None = flat full bisection).
        self._routing = platform.routing if platform is not None else None
        if platform is not None:
            self._intra = [platform.intra_link_of(i)
                           for i in range(num_nodes)]
        else:
            self._intra = None
        self._links: Dict[str, _HopLink] = {}
        #: Lazily filled per-(src, dst) route cache:
        #: ``(link names, hop links, 2 * one-way path latency)``.  Routes
        #: are a pure function of the topology (built once, never
        #: rerouted — partitions hold messages, they do not divert them),
        #: so resolving names to _HopLink objects and summing the path
        #: latency once per pair replaces two dict walks per message.
        self._route_cache: Dict[Any, Any] = {}
        if self._routing is not None:
            for name, link in sorted(self._routing.links.items()):
                self._links[name] = _HopLink(env, name, link.bandwidth,
                                             link.latency, obs, faults)

    # -- cost helpers ------------------------------------------------------
    def bandwidth_for(self, mode: str) -> float:
        if mode == "host":
            return self.cfg.bandwidth
        if mode == "d2d":
            return self.cfg.d2d_bandwidth
        raise ValueError(f"unknown transfer mode {mode!r}; "
                         f"expected one of {TRANSFER_MODES}")

    def serialization_time(self, nbytes: float, mode: str) -> float:
        return nbytes / self.bandwidth_for(mode)

    def hops(self, src: int, dst: int) -> int:
        """Route length in links (0 = same node or flat single hop)."""
        if self._routing is None or src == dst:
            return 0
        return self._routing.hops(src, dst)

    # -- transmission ------------------------------------------------------
    def transmit(self, src: int, dst: int, nbytes: float,
                 mode: str = "host", injected: Optional[Event] = None,
                 extra_latency: float = 0.0) -> Event:
        """Start a message; the returned event fires on arrival at *dst*.

        *injected*, when given, is succeeded once the sender's buffer is
        reusable (injection finished) — the local-completion point of a
        nonblocking MPI send.  *extra_latency* is added to the arrival time
        (e.g. the pipeline fill/drain of host-staged device transfers).
        """
        if not (0 <= src < self.num_nodes and 0 <= dst < self.num_nodes):
            raise ValueError(f"node out of range: src={src} dst={dst} "
                             f"(cluster has {self.num_nodes})")
        if nbytes < 0:
            raise ValueError(f"negative message size {nbytes!r}")
        if extra_latency < 0:
            raise ValueError(f"negative extra latency {extra_latency!r}")
        done = self.env.event(name=f"msg:{src}->{dst}")
        if src == dst:
            self.env.process(self._loopback(src, nbytes, done, injected),
                             name=f"loopback:{src}")
        elif self._routing is None:
            self.bandwidth_for(mode)  # validate early
            self.env.process(
                self._wire(src, dst, nbytes, mode, done, injected,
                           extra_latency),
                name=f"wire:{src}->{dst}")
        else:
            self.bandwidth_for(mode)  # validate early
            self.env.process(
                self._routed_wire(src, dst, nbytes, mode, done, injected,
                                  extra_latency),
                name=f"route:{src}->{dst}")
        return done

    def send(self, src: int, dst: int, nbytes: float,
             mode: str = "host") -> Generator[Event, Any, None]:
        """Blocking form of :meth:`transmit`."""
        yield self.transmit(src, dst, nbytes, mode)

    # -- internals ------------------------------------------------------------
    def _loopback(self, node: int, nbytes: float, done: Event,
                  injected: Optional[Event]):
        if self._intra is None:
            yield _LOOPBACK_LATENCY + nbytes / _LOOPBACK_BANDWIDTH
        else:
            spec = self._intra[node]
            yield spec.latency + nbytes / spec.bandwidth
        if injected is not None:
            injected.succeed()
        done.succeed()

    def _inject(self, src: int, dst: int, nbytes: float, mode: str,
                rtt_latency: float) -> Generator[Event, Any, float]:
        """NIC phase shared by the flat and routed wires.

        Serializes on the sender's NIC for the injection overhead plus the
        message's serialization time (scaled by degradation windows), and
        returns the extra arrival delay bought by burst-loss retransmits
        (*rtt_latency* is one round trip of pure wire latency).
        """
        nic = self._nics[src]
        faults = self._faults
        extra = 0.0
        if nic.inflight_series is not None:
            nic.inflight += 1
            nic.inflight_series.sample(self.env._now, nic.inflight)
        yield from nic.lock.acquire()
        try:
            serialization = self.serialization_time(nbytes, mode)
            if faults is not None:
                # Degradation scales the NIC occupancy; burst loss costs
                # one full timeout-and-resend round per lost attempt.  The
                # message itself is never dropped — link-level reliability
                # re-establishes delivery, only later.
                serialization *= faults.degrade_factor(
                    f"fabric.nic{src}", self.env._now)
                retries = faults.loss_retries(src, dst, self.env._now)
                if retries:
                    extra = retries * (serialization + rtt_latency)
            yield self.cfg.injection_overhead + serialization
        finally:
            nic.lock.release()
        nic.messages += 1
        nic.bytes_injected += nbytes
        if nic.inflight_series is not None:
            nic.inflight -= 1
            nic.inflight_series.sample(self.env._now, nic.inflight)
            nic.byte_counter.inc(nbytes)
            nic.msg_counter.inc()
        return extra

    def _wire(self, src: int, dst: int, nbytes: float, mode: str, done: Event,
              injected: Optional[Event], extra_latency: float):
        """Flat interconnect: single-hop LogGP wire (the calibrated path)."""
        faults = self._faults
        if faults is not None:
            # Partition window: the wire holds until the partition heals.
            hold = faults.partition_hold(src, dst, self.env._now)
            if hold > 0.0:
                yield hold
        extra_latency += yield from self._inject(src, dst, nbytes, mode,
                                                 2.0 * self.cfg.latency)
        if injected is not None:
            injected.succeed()
        # Arrival via the deferred-call lane: the same (when, priority,
        # seq) timed entry a ``yield latency`` would create, but its
        # dispatch succeeds ``done`` directly instead of resuming this
        # generator for one final statement.  The process-completion
        # entry moves from arrival time to now — a no-op dispatch nothing
        # observes (transmit hands out ``done``, never the process).
        self.env.call_at(self.cfg.latency + extra_latency, done.succeed)

    def _routed_wire(self, src: int, dst: int, nbytes: float, mode: str,
                     done: Event, injected: Optional[Event],
                     extra_latency: float):
        """Routed interconnect: NIC injection, then every hop on the route.

        Each hop is a fluid-shared link (concurrent messages split its
        bandwidth max-min fairly) followed by the hop's wire latency —
        a store-and-forward pipeline whose bottleneck link governs
        sustained bandwidth while latencies accumulate per hop.
        """
        key = src * self.num_nodes + dst
        cached = self._route_cache.get(key)
        if cached is None:
            route = self._routing.route(src, dst)
            cached = (route,
                      tuple(self._links[name] for name in route),
                      2.0 * self._routing.path_latency(src, dst))
            self._route_cache[key] = cached
        route, hops, rtt = cached
        faults = self._faults
        if faults is not None:
            # A partition cutting ANY link on the route (or targeting the
            # node pair) holds the message until it heals.
            hold = faults.partition_hold_route(src, dst, route, self.env._now)
            if hold > 0.0:
                yield hold
        extra_latency += yield from self._inject(src, dst, nbytes, mode, rtt)
        if injected is not None:
            injected.succeed()
        # Hand the hop traversal to a flyweight callback walker; this
        # generator ends here, so the (unobserved) process-completion
        # entry lands now instead of after arrival.
        _RouteWalk(self.env, hops, nbytes, extra_latency, done).start()

    def ring_doorbell(self, node: int) -> None:
        """Count one MMIO doorbell ring at *node*'s NIC (device-initiated
        RMA); the issue-unit cost is charged by the device, this is the
        NIC-side bookkeeping."""
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node out of range: {node} "
                             f"(cluster has {self.num_nodes})")
        self._nics[node].doorbells += 1

    # -- statistics ------------------------------------------------------------
    def nic_stats(self, node: int) -> dict:
        nic = self._nics[node]
        return {"messages": nic.messages, "bytes": nic.bytes_injected,
                "doorbells": nic.doorbells}

    def link_stats(self) -> Dict[str, dict]:
        """Per-topology-edge byte totals (routed interconnects only)."""
        return {name: {"bytes": hop.flow.bytes_transferred,
                       "active_flows": hop.flow.active_flows}
                for name, hop in self._links.items()}
