"""Inter-node interconnect model (4x EDR InfiniBand on Greina).

A LogGP-flavoured cost model: each message pays a sender-side injection
overhead *o*, occupies the sender's NIC for its serialization time
``nbytes / bandwidth``, then arrives after the one-way latency *L*.
Concurrent messages from the same node serialize at the NIC, which yields
bandwidth sharing; messages from different nodes are independent (full
bisection, as on a small fat-tree).

Two bandwidth classes model the CUDA-aware transfer paths the paper
discusses:

* ``mode="host"`` — host-staged transfer at the full link bandwidth
  (OpenMPI's choice above 30 kB "to achieve better bandwidth"),
* ``mode="d2d"``  — direct GPUDirect device-to-device RDMA at the
  (much lower) PCIe-read-limited bandwidth.

Intra-node transmissions (src == dst) take a cheap loopback path.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from ..sim import Environment, Event, Semaphore
from ..hw.config import FabricConfig

__all__ = ["Fabric", "TRANSFER_MODES"]

TRANSFER_MODES = ("host", "d2d")

_LOOPBACK_LATENCY = 0.3e-6
_LOOPBACK_BANDWIDTH = 12.0e9


class _Nic:
    """Per-node injection port; serializes outgoing messages."""

    def __init__(self, env: Environment, index: int, obs: Any = None):
        self.lock = Semaphore(env, 1, name=f"nic{index}")
        self.bytes_injected = 0.0
        self.messages = 0
        # Observability: messages currently queued or injecting at this
        # NIC (occupancy series) plus byte/message counters, or None.
        self.inflight = 0
        self.inflight_series = obs.link_series(
            f"fabric.nic{index}.inflight") if obs else None
        self.byte_counter = obs.link_counter(
            f"fabric.nic{index}.bytes") if obs else None
        self.msg_counter = obs.link_counter(
            f"fabric.nic{index}.messages") if obs else None


class Fabric:
    """The cluster interconnect."""

    def __init__(self, env: Environment, cfg: FabricConfig, num_nodes: int,
                 obs: Any = None, faults: Any = None):
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        self.env = env
        self.cfg = cfg
        self.num_nodes = num_nodes
        self._nics: List[_Nic] = [_Nic(env, i, obs)
                                  for i in range(num_nodes)]
        # Fault plane or None.  Wire transfers query it for partition
        # windows (hold until heal), burst loss (retransmit delay — the
        # message is never silently lost; reliability is re-established by
        # retransmission, the arrival is just late), and NIC degradation.
        self._faults = faults

    # -- cost helpers ------------------------------------------------------
    def bandwidth_for(self, mode: str) -> float:
        if mode == "host":
            return self.cfg.bandwidth
        if mode == "d2d":
            return self.cfg.d2d_bandwidth
        raise ValueError(f"unknown transfer mode {mode!r}; "
                         f"expected one of {TRANSFER_MODES}")

    def serialization_time(self, nbytes: float, mode: str) -> float:
        return nbytes / self.bandwidth_for(mode)

    # -- transmission ------------------------------------------------------
    def transmit(self, src: int, dst: int, nbytes: float,
                 mode: str = "host", injected: Optional[Event] = None,
                 extra_latency: float = 0.0) -> Event:
        """Start a message; the returned event fires on arrival at *dst*.

        *injected*, when given, is succeeded once the sender's buffer is
        reusable (injection finished) — the local-completion point of a
        nonblocking MPI send.  *extra_latency* is added to the arrival time
        (e.g. the pipeline fill/drain of host-staged device transfers).
        """
        if not (0 <= src < self.num_nodes and 0 <= dst < self.num_nodes):
            raise ValueError(f"node out of range: src={src} dst={dst} "
                             f"(cluster has {self.num_nodes})")
        if nbytes < 0:
            raise ValueError(f"negative message size {nbytes!r}")
        if extra_latency < 0:
            raise ValueError(f"negative extra latency {extra_latency!r}")
        done = self.env.event(name=f"msg:{src}->{dst}")
        if src == dst:
            self.env.process(self._loopback(nbytes, done, injected),
                             name=f"loopback:{src}")
        else:
            self.bandwidth_for(mode)  # validate early
            self.env.process(
                self._wire(src, dst, nbytes, mode, done, injected,
                           extra_latency),
                name=f"wire:{src}->{dst}")
        return done

    def send(self, src: int, dst: int, nbytes: float,
             mode: str = "host") -> Generator[Event, Any, None]:
        """Blocking form of :meth:`transmit`."""
        yield self.transmit(src, dst, nbytes, mode)

    # -- internals ------------------------------------------------------------
    def _loopback(self, nbytes: float, done: Event,
                  injected: Optional[Event]):
        yield _LOOPBACK_LATENCY + nbytes / _LOOPBACK_BANDWIDTH
        if injected is not None:
            injected.succeed()
        done.succeed()

    def _wire(self, src: int, dst: int, nbytes: float, mode: str, done: Event,
              injected: Optional[Event], extra_latency: float):
        nic = self._nics[src]
        faults = self._faults
        if faults is not None:
            # Partition window: the wire holds until the partition heals.
            hold = faults.partition_hold(src, dst, self.env.now)
            if hold > 0.0:
                yield hold
        if nic.inflight_series is not None:
            nic.inflight += 1
            nic.inflight_series.sample(self.env.now, nic.inflight)
        yield from nic.lock.acquire()
        try:
            serialization = self.serialization_time(nbytes, mode)
            if faults is not None:
                # Degradation scales the NIC occupancy; burst loss costs
                # one full timeout-and-resend round per lost attempt.  The
                # message itself is never dropped — link-level reliability
                # re-establishes delivery, only later.
                serialization *= faults.degrade_factor(
                    f"fabric.nic{src}", self.env.now)
                retries = faults.loss_retries(src, dst, self.env.now)
                if retries:
                    extra_latency += retries * (serialization
                                                + 2.0 * self.cfg.latency)
            yield self.cfg.injection_overhead + serialization
        finally:
            nic.lock.release()
        nic.messages += 1
        nic.bytes_injected += nbytes
        if nic.inflight_series is not None:
            nic.inflight -= 1
            nic.inflight_series.sample(self.env.now, nic.inflight)
            nic.byte_counter.inc(nbytes)
            nic.msg_counter.inc()
        if injected is not None:
            injected.succeed()
        yield self.cfg.latency + extra_latency
        done.succeed()

    # -- statistics ------------------------------------------------------------
    def nic_stats(self, node: int) -> dict:
        nic = self._nics[node]
        return {"messages": nic.messages, "bytes": nic.bytes_injected}
