"""Inter-node interconnect models."""

from .fabric import TRANSFER_MODES, Fabric

__all__ = ["Fabric", "TRANSFER_MODES"]
