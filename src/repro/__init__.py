"""dcuda-repro: a reproduction of *dCUDA: Hardware Supported Overlap of
Computation and Communication* (Gysi, Baer, Hoefler -- SC'16) on a
deterministic discrete-event simulation of a GPU cluster.

Subpackages
-----------
``repro.sim``
    Discrete-event simulation kernel (processes, events, resources,
    fair-share bandwidth links, tracing).
``repro.hw``
    Hardware models and calibration: GPU, device memory, PCIe, node,
    cluster (``greina()`` preset).
``repro.net``
    Inter-node interconnect fabric.
``repro.mpi``
    Two-sided MPI substrate on the simulated hosts.
``repro.runtime``
    The dCUDA host-side runtime system (queues, block managers, event
    handler).
``repro.dcuda``
    The device-side dCUDA library -- the paper's primary contribution --
    plus the paper's discussion-section extensions, a C-style API, and device-side collectives.
``repro.mpicuda``
    The traditional MPI-CUDA baseline programming model.
``repro.apps``
    Mini-applications (stencil, diffusion, particles, SpMV) in both
    programming models with serial references.
``repro.bench``
    Benchmark harness regenerating every figure of the paper's
    evaluation (also a CLI: ``python -m repro.bench``).

Quick start: see ``repro.dcuda.launch`` and ``examples/quickstart.py``.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
