"""Sharded content-addressed on-disk result store (``.repro-cache/``).

Layout: one directory per *source fingerprint generation* (first 16 hex
chars of :func:`~repro.exec.fingerprint.source_fingerprint`), and inside
it N ``shard-XXX`` directories addressed by the task-key prefix.  One
file per result, named by the full task key — the sha256 of the spec's
content hash concatenated with the shared-payload digest.  A key never
changes meaning: same code + same spec + same shared inputs ⇒ same file,
same shard.  Sharding keeps any one directory small enough to be cheap
on network filesystems (a million-entry campaign is ~4k files per shard
at the default width) and lets independent workers publish concurrently
without contending on a single directory's metadata.

A ``meta.json`` next to the shards records the generation's shard
count.  The count on disk always wins over the constructor argument, so
readers and writers with different defaults agree on where every key
lives.  Generations written before sharding existed have their entries
directly in the generation directory; those *legacy* entries are
verified and moved into their home shard transparently on first read
(or in bulk via :meth:`ResultCache.migrate`), so an old cache keeps its
hits across the upgrade.

Entry format (self-verifying, unchanged from the unsharded store)::

    repro-cache-v1\\n
    <sha256 hex of payload>\\n
    <pickled payload>

Reads verify the magic line and the payload digest before unpickling;
*any* deviation — truncation, bit rot, a partially written file, an
unpicklable payload — classifies as a miss, best-effort deletes the bad
file, and the coordinator simply re-runs the task.  Corruption can cost
time, never correctness, and never crashes a sweep.  Writes go through a
same-directory temp file + :func:`os.replace`, so a crashed writer
leaves either the old entry or a (detectable) partial temp file, never a
half-new entry under the real name.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..errors import DCudaUsageError
from .fingerprint import source_fingerprint
from .spec import RunSpec

__all__ = ["ResultCache", "CacheStats", "ShardStats", "DEFAULT_CACHE_DIR",
           "DEFAULT_SHARDS"]

#: Default cache location, relative to the invoking working directory
#: (the repo root in every documented workflow).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Default shard fan-out per generation.  Wide enough that million-point
#: campaigns stay at a few thousand files per directory, small enough
#: that an ``ls`` of a fresh cache is still readable.
DEFAULT_SHARDS = 16

_MAGIC = b"repro-cache-v1"
_META_NAME = "meta.json"


@dataclass(frozen=True)
class ShardStats:
    """Census of one shard directory within the current generation."""

    name: str
    entries: int
    bytes: int


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time census of a cache directory."""

    root: str
    fingerprint: str
    #: Entries/bytes under the *current* source fingerprint.
    entries: int
    bytes: int
    #: Entries/bytes under stale fingerprints (reclaimable by ``gc``).
    stale_entries: int
    stale_bytes: int
    #: Number of fingerprint generations present on disk.
    generations: int
    #: Shard fan-out of the current generation (0 = generation absent).
    shards: int = 0
    #: Pre-sharding entries still sitting flat in the current generation
    #: directory (they migrate on first read or via ``migrate``).
    legacy_entries: int = 0
    #: Per-shard census of the current generation.
    shard_breakdown: Tuple[ShardStats, ...] = field(default=())


class ResultCache:
    """Sharded content-addressed result store for the sweep service.

    Args:
        root: Cache directory (created lazily on first write).
        fingerprint: Source-tree fingerprint to namespace entries under;
            defaults to the live fingerprint of the installed ``repro``
            package.  Tests inject explicit values to model code changes.
        shards: Shard fan-out for *new* generations.  A generation that
            already has a ``meta.json`` keeps its recorded count — the
            disk always wins, so mixed-version readers agree on layout.
    """

    def __init__(self, root: os.PathLike = DEFAULT_CACHE_DIR,
                 fingerprint: Optional[str] = None,
                 shards: int = DEFAULT_SHARDS):
        self.root = Path(root)
        self.fingerprint = fingerprint or source_fingerprint()
        if not self.fingerprint:
            raise DCudaUsageError("empty cache fingerprint")
        if shards < 1:
            raise DCudaUsageError(f"shard count must be >= 1, got {shards}")
        self._configured_shards = int(shards)
        self._shards: Optional[int] = None  # resolved lazily, disk wins

    # ---------------------------------------------------------- keys -----
    def key_for(self, spec: RunSpec, shared_digest: str = "") -> str:
        """Task key: spec content hash salted with the shared digest."""
        h = hashlib.sha256()
        h.update(spec.content_hash().encode())
        h.update(shared_digest.encode())
        return h.hexdigest()

    def _generation_dir(self) -> Path:
        return self.root / self.fingerprint[:16]

    # -------------------------------------------------------- sharding -----
    def shard_count(self) -> int:
        """Shard fan-out of the current generation (disk wins)."""
        if self._shards is None:
            self._shards = self._read_meta_shards(self._generation_dir())
        return self._shards

    def _read_meta_shards(self, gen: Path) -> int:
        """Shard count recorded in *gen*'s meta.json, else configured."""
        try:
            meta = json.loads((gen / _META_NAME).read_text())
            count = int(meta["shards"])
            if count >= 1:
                return count
        except (OSError, ValueError, KeyError, TypeError):
            pass
        return self._configured_shards

    def _write_meta(self, gen: Path) -> None:
        """Publish meta.json atomically if absent (first write wins)."""
        path = gen / _META_NAME
        if path.exists():
            return
        blob = json.dumps({"format": "repro-cache-v2",
                           "shards": self.shard_count()},
                          sort_keys=True).encode()
        fd, tmp = tempfile.mkstemp(dir=gen, prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(fd, "wb") as f:
                f.write(blob)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    @staticmethod
    def shard_index(key: str, shards: int) -> int:
        """Shard a task key by its hex prefix (hash fallback otherwise)."""
        try:
            return int(key[:2], 16) % shards
        except ValueError:
            return zlib.crc32(key.encode()) % shards

    def _shard_dir(self, key: str) -> Path:
        idx = self.shard_index(key, self.shard_count())
        return self._generation_dir() / f"shard-{idx:03d}"

    def _entry_path(self, key: str) -> Path:
        return self._shard_dir(key) / f"{key}.pkl"

    def _legacy_path(self, key: str) -> Path:
        """Where a pre-sharding store kept this key (flat in the gen)."""
        return self._generation_dir() / f"{key}.pkl"

    # ----------------------------------------------------------- I/O -----
    @staticmethod
    def _verify(blob: bytes) -> Any:
        """Decode one self-verifying entry; raises on any deviation."""
        magic, digest, payload = blob.split(b"\n", 2)
        if magic != _MAGIC:
            raise ValueError("bad magic")
        if hashlib.sha256(payload).hexdigest().encode() != digest:
            raise ValueError("payload digest mismatch")
        return pickle.loads(payload)

    def get(self, key: str) -> Tuple[bool, Any]:
        """Look up *key*; returns ``(hit, result)``.

        Checks the key's home shard first, then the legacy flat location
        of a pre-sharding store; a verified legacy entry is moved into
        its shard on the way out, so the migration is incremental and
        free.  A corrupted, truncated, or unreadable entry in either
        place is treated as a miss and deleted best-effort — the caller
        re-runs the task and the subsequent :meth:`put` repairs it.
        """
        path = self._entry_path(key)
        try:
            entry = self._verify(path.read_bytes())
            return True, entry["result"]
        except FileNotFoundError:
            pass
        except Exception:
            try:
                path.unlink()
            except OSError:
                pass
            return False, None
        # Miss in the shard — a legacy (unsharded) entry may hold it.
        legacy = self._legacy_path(key)
        try:
            blob = legacy.read_bytes()
            entry = self._verify(blob)
        except FileNotFoundError:
            return False, None
        except Exception:
            try:
                legacy.unlink()
            except OSError:
                pass
            return False, None
        self._publish(path, blob)
        try:
            legacy.unlink()
        except OSError:
            pass
        return True, entry["result"]

    def put(self, key: str, result: Any, label: str = "") -> None:
        """Store *result* under *key*, atomically, in its home shard.

        A result the pickle module cannot serialize is silently not
        cached (the sweep already has the in-memory value; only replay
        speed is lost).
        """
        try:
            payload = pickle.dumps({"result": result, "label": label},
                                   protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return
        blob = (_MAGIC + b"\n"
                + hashlib.sha256(payload).hexdigest().encode() + b"\n"
                + payload)
        self._publish(self._entry_path(key), blob)

    def _publish(self, path: Path, blob: bytes) -> None:
        """Atomically write *blob* to *path* (same-dir temp + replace)."""
        shard = path.parent
        gen = shard.parent
        shard.mkdir(parents=True, exist_ok=True)
        self._write_meta(gen)
        fd, tmp = tempfile.mkstemp(dir=shard, prefix=".tmp-", suffix=".pkl")
        try:
            with os.fdopen(fd, "wb") as f:
                f.write(blob)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # ------------------------------------------------------- migration -----
    def migrate(self) -> Tuple[int, int]:
        """Move every legacy flat entry of the current generation into
        its home shard, verifying each on the way.

        Returns:
            ``(migrated, dropped)`` — entries moved vs. corrupt entries
            deleted (a dropped entry degrades to a miss + re-run later,
            never a wrong result).
        """
        gen = self._generation_dir()
        migrated = dropped = 0
        if not gen.is_dir():
            return 0, 0
        for entry in sorted(gen.glob("*.pkl")):
            if entry.name.startswith(".tmp-"):
                continue
            key = entry.stem
            try:
                blob = entry.read_bytes()
                self._verify(blob)
            except Exception:
                try:
                    entry.unlink()
                except OSError:
                    pass
                dropped += 1
                continue
            self._publish(self._entry_path(key), blob)
            try:
                entry.unlink()
            except OSError:
                pass
            migrated += 1
        return migrated, dropped

    # ----------------------------------------------------- maintenance -----
    def _census(self):
        current = self._generation_dir().name
        live = stale = live_b = stale_b = legacy = 0
        gens = set()
        per_shard: Dict[str, List[int]] = {}
        if self.root.is_dir():
            for gen in self.root.iterdir():
                if not gen.is_dir():
                    continue
                gens.add(gen.name)
                for entry in gen.rglob("*.pkl"):
                    if entry.name.startswith(".tmp-"):
                        continue
                    size = entry.stat().st_size
                    if gen.name == current:
                        live += 1
                        live_b += size
                        if entry.parent == gen:
                            legacy += 1
                        else:
                            counts = per_shard.setdefault(
                                entry.parent.name, [0, 0])
                            counts[0] += 1
                            counts[1] += size
                    else:
                        stale += 1
                        stale_b += size
        return current, live, live_b, stale, stale_b, gens, legacy, per_shard

    def stats(self) -> CacheStats:
        """Census the cache directory (current vs. stale generations,
        plus the current generation's per-shard breakdown)."""
        (_, live, live_b, stale, stale_b, gens, legacy,
         per_shard) = self._census()
        breakdown = tuple(
            ShardStats(name=name, entries=counts[0], bytes=counts[1])
            for name, counts in sorted(per_shard.items()))
        shards = self.shard_count() if self._generation_dir().is_dir() else 0
        return CacheStats(root=str(self.root), fingerprint=self.fingerprint,
                          entries=live, bytes=live_b, stale_entries=stale,
                          stale_bytes=stale_b, generations=len(gens),
                          shards=shards, legacy_entries=legacy,
                          shard_breakdown=breakdown)

    def _remove_tree(self, gen: Path) -> Tuple[int, int]:
        """Delete a generation dir recursively; count only entries."""
        removed = freed = 0
        for entry in sorted(gen.rglob("*"), reverse=True):
            if entry.is_dir():
                try:
                    entry.rmdir()
                except OSError:
                    pass
                continue
            size = entry.stat().st_size
            try:
                entry.unlink()
            except OSError:
                continue
            if entry.suffix == ".pkl" and not entry.name.startswith(".tmp-"):
                removed += 1
                freed += size
        try:
            gen.rmdir()
        except OSError:
            pass
        return removed, freed

    def gc(self) -> Tuple[int, int]:
        """Delete every entry from stale fingerprint generations.

        Returns:
            ``(files_removed, bytes_freed)``.
        """
        current = self._generation_dir().name
        removed = freed = 0
        if not self.root.is_dir():
            return 0, 0
        for gen in list(self.root.iterdir()):
            if not gen.is_dir() or gen.name == current:
                continue
            r, f = self._remove_tree(gen)
            removed += r
            freed += f
        return removed, freed

    def clear(self) -> Tuple[int, int]:
        """Delete *every* entry, current generation included."""
        removed = freed = 0
        if not self.root.is_dir():
            return 0, 0
        for gen in list(self.root.iterdir()):
            if not gen.is_dir():
                continue
            r, f = self._remove_tree(gen)
            removed += r
            freed += f
        return removed, freed
