"""Content-addressed on-disk result cache (``.repro-cache/``).

Layout: one directory per *source fingerprint generation* (first 16 hex
chars of :func:`~repro.exec.fingerprint.source_fingerprint`), one file
per result, named by the full task key — the sha256 of the spec's
content hash concatenated with the shared-payload digest.  A key never
changes meaning: same code + same spec + same shared inputs ⇒ same file.

Entry format (self-verifying)::

    repro-cache-v1\\n
    <sha256 hex of payload>\\n
    <pickled payload>

Reads verify the magic line and the payload digest before unpickling;
*any* deviation — truncation, bit rot, a partially written file, an
unpicklable payload — classifies as a miss, best-effort deletes the bad
file, and the engine simply re-runs the task.  Corruption can cost time,
never correctness, and never crashes a sweep.  Writes go through a
same-directory temp file + :func:`os.replace`, so a crashed writer
leaves either the old entry or a (detectable) partial temp file, never a
half-new entry under the real name.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Tuple

from ..errors import DCudaUsageError
from .fingerprint import source_fingerprint
from .spec import RunSpec

__all__ = ["ResultCache", "CacheStats", "DEFAULT_CACHE_DIR"]

#: Default cache location, relative to the invoking working directory
#: (the repo root in every documented workflow).
DEFAULT_CACHE_DIR = ".repro-cache"

_MAGIC = b"repro-cache-v1"


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time census of a cache directory."""

    root: str
    fingerprint: str
    #: Entries/bytes under the *current* source fingerprint.
    entries: int
    bytes: int
    #: Entries/bytes under stale fingerprints (reclaimable by ``gc``).
    stale_entries: int
    stale_bytes: int
    #: Number of fingerprint generations present on disk.
    generations: int


class ResultCache:
    """Content-addressed result store for the sweep engine.

    Args:
        root: Cache directory (created lazily on first write).
        fingerprint: Source-tree fingerprint to namespace entries under;
            defaults to the live fingerprint of the installed ``repro``
            package.  Tests inject explicit values to model code changes.
    """

    def __init__(self, root: os.PathLike = DEFAULT_CACHE_DIR,
                 fingerprint: Optional[str] = None):
        self.root = Path(root)
        self.fingerprint = fingerprint or source_fingerprint()
        if not self.fingerprint:
            raise DCudaUsageError("empty cache fingerprint")

    # ---------------------------------------------------------- keys -----
    def key_for(self, spec: RunSpec, shared_digest: str = "") -> str:
        """Task key: spec content hash salted with the shared digest."""
        h = hashlib.sha256()
        h.update(spec.content_hash().encode())
        h.update(shared_digest.encode())
        return h.hexdigest()

    def _generation_dir(self) -> Path:
        return self.root / self.fingerprint[:16]

    def _entry_path(self, key: str) -> Path:
        return self._generation_dir() / f"{key}.pkl"

    # ----------------------------------------------------------- I/O -----
    def get(self, key: str) -> Tuple[bool, Any]:
        """Look up *key*; returns ``(hit, result)``.

        A corrupted, truncated, or unreadable entry is treated as a miss
        and deleted best-effort — the caller re-runs the task and the
        subsequent :meth:`put` repairs the entry.
        """
        path = self._entry_path(key)
        try:
            blob = path.read_bytes()
            magic, digest, payload = blob.split(b"\n", 2)
            if magic != _MAGIC:
                raise ValueError("bad magic")
            if hashlib.sha256(payload).hexdigest().encode() != digest:
                raise ValueError("payload digest mismatch")
            entry = pickle.loads(payload)
            return True, entry["result"]
        except FileNotFoundError:
            return False, None
        except Exception:
            try:
                path.unlink()
            except OSError:
                pass
            return False, None

    def put(self, key: str, result: Any, label: str = "") -> None:
        """Store *result* under *key*, atomically.

        A result the pickle module cannot serialize is silently not
        cached (the sweep already has the in-memory value; only replay
        speed is lost).
        """
        try:
            payload = pickle.dumps({"result": result, "label": label},
                                   protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return
        gen = self._generation_dir()
        gen.mkdir(parents=True, exist_ok=True)
        blob = (_MAGIC + b"\n"
                + hashlib.sha256(payload).hexdigest().encode() + b"\n"
                + payload)
        fd, tmp = tempfile.mkstemp(dir=gen, prefix=".tmp-", suffix=".pkl")
        try:
            with os.fdopen(fd, "wb") as f:
                f.write(blob)
            os.replace(tmp, self._entry_path(key))
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # ----------------------------------------------------- maintenance -----
    def _census(self):
        current = self._generation_dir().name
        live = stale = live_b = stale_b = 0
        gens = set()
        if self.root.is_dir():
            for gen in self.root.iterdir():
                if not gen.is_dir():
                    continue
                gens.add(gen.name)
                for entry in gen.glob("*.pkl"):
                    size = entry.stat().st_size
                    if gen.name == current:
                        live += 1
                        live_b += size
                    else:
                        stale += 1
                        stale_b += size
        return current, live, live_b, stale, stale_b, gens

    def stats(self) -> CacheStats:
        """Census the cache directory (current vs. stale generations)."""
        _, live, live_b, stale, stale_b, gens = self._census()
        return CacheStats(root=str(self.root), fingerprint=self.fingerprint,
                          entries=live, bytes=live_b, stale_entries=stale,
                          stale_bytes=stale_b, generations=len(gens))

    def gc(self) -> Tuple[int, int]:
        """Delete every entry from stale fingerprint generations.

        Returns:
            ``(files_removed, bytes_freed)``.
        """
        current = self._generation_dir().name
        removed = freed = 0
        if not self.root.is_dir():
            return 0, 0
        for gen in list(self.root.iterdir()):
            if not gen.is_dir() or gen.name == current:
                continue
            for entry in list(gen.iterdir()):
                freed += entry.stat().st_size
                entry.unlink()
                removed += 1
            try:
                gen.rmdir()
            except OSError:
                pass
        return removed, freed

    def clear(self) -> Tuple[int, int]:
        """Delete *every* entry, current generation included."""
        removed = freed = 0
        if not self.root.is_dir():
            return 0, 0
        for gen in list(self.root.iterdir()):
            if not gen.is_dir():
                continue
            for entry in list(gen.iterdir()):
                freed += entry.stat().st_size
                entry.unlink()
                removed += 1
            try:
                gen.rmdir()
            except OSError:
                pass
        return removed, freed
