"""Command-line sweep service: ``python -m repro.exec``.

Subcommands::

    run <suite>     execute a named sweep (chaos, fig6..fig11, topo,
                    ml, simperf) on any executor transport
    worker          serve jobs: --stdio (pipe fleet member) or
                    --port N (HTTP worker daemon)
    status          census the result cache + live sweep progress
    cache stats     census with optional per-shard breakdown
    cache migrate   move legacy unsharded entries into their shards
    cache gc        delete entries from stale source fingerprints
    cache clear     delete every cache entry

``run`` prints the suite's table, an engine summary line, and writes the
machine-readable sweep record to ``BENCH_sweep.json`` at the repo root:
wall-clock, worker count, executor, cache hit rate, and the canonical
digest of the merged result list.  The digest is the bit-identity
witness — it is a pure function of the spec list, so any two invocations
of the same suite at the same source fingerprint must print the same
digest regardless of executor, worker count, completion order, cache
state, or worker deaths survived along the way.

``--require-cached`` exits with status 3 unless *every* cacheable task
was served from the cache — CI uses it to assert that a warm replay does
zero simulation work.

Examples::

    PYTHONPATH=src python -m repro.exec run chaos --seeds 50 --workers 4
    PYTHONPATH=src python -m repro.exec run fig6 --workers 2
    PYTHONPATH=src python -m repro.exec worker --port 8791   # terminal 1
    PYTHONPATH=src python -m repro.exec run fig6 --executor http \\
        --hosts 127.0.0.1:8791                               # terminal 2
    PYTHONPATH=src python -m repro.exec run fig6 --require-cached
    PYTHONPATH=src python -m repro.exec status
    PYTHONPATH=src python -m repro.exec cache stats --shard
    PYTHONPATH=src python -m repro.exec cache gc
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from ..errors import DCudaError
from .cache import DEFAULT_CACHE_DIR, ResultCache
from .coordinator import STATUS_FILENAME
from .engine import default_workers, run_specs
from .executors import EXECUTOR_NAMES
from .fingerprint import repo_root, source_fingerprint
from .spec import canonical_digest
from .suites import SUITE_NAMES, build_suite

__all__ = ["main"]

#: Exit status for ``--require-cached`` violations (2 is argparse's).
EXIT_NOT_CACHED = 3


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.exec",
        description="Deterministic sweep service with pluggable "
                    "executors and a sharded content-addressed cache.")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute a named sweep")
    run.add_argument("suite", choices=SUITE_NAMES,
                     help="which sweep to run")
    run.add_argument("--workers", "-j", type=int, default=None,
                     help="worker processes (default: $REPRO_EXEC_WORKERS "
                          "or 1 = serial)")
    run.add_argument("--executor", choices=EXECUTOR_NAMES, default=None,
                     help="transport (default: $REPRO_EXEC_EXECUTOR, or "
                          "serial/local by worker count)")
    run.add_argument("--hosts", type=str, default=None, metavar="H:P,...",
                     help="http executor: comma-separated host:port "
                          "worker daemons (default: $REPRO_EXEC_HOSTS)")
    run.add_argument("--progress", action="store_true",
                     help="stream a live progress line to stderr")
    run.add_argument("--cache-dir", type=str, default=DEFAULT_CACHE_DIR,
                     help=f"result cache directory (default: "
                          f"{DEFAULT_CACHE_DIR})")
    run.add_argument("--no-cache", action="store_true",
                     help="execute everything; neither read nor write "
                          "the cache")
    run.add_argument("--timeout", type=float, default=None, metavar="S",
                     help="per-task wall-clock budget in seconds "
                          "(process transports)")
    run.add_argument("--json", type=str, default=None, metavar="PATH",
                     help="sweep record path (default: BENCH_sweep.json "
                          "at the repo root)")
    run.add_argument("--no-json", action="store_true",
                     help="skip writing the sweep record")
    run.add_argument("--require-cached", action="store_true",
                     help=f"exit {EXIT_NOT_CACHED} unless every cacheable "
                          "task was a cache hit")
    # Suite shape knobs (each suite reads the subset it understands).
    run.add_argument("--seeds", type=int, default=50,
                     help="chaos: number of fault seeds (default 50)")
    run.add_argument("--nodes", type=int, default=2,
                     help="chaos: cluster size (default 2)")
    run.add_argument("--ranks", type=int, default=2,
                     help="chaos: ranks per device (default 2)")
    run.add_argument("--steps", type=int, default=2,
                     help="chaos: diffusion steps (default 2)")
    run.add_argument("--iterations", type=int, default=30,
                     help="fig6: ping-pong iterations (default 30)")
    run.add_argument("--no-verify", action="store_true",
                     help="fig9-11: skip reference verification")
    run.add_argument("--full", action="store_true",
                     help="simperf: figure-scale workload")
    run.add_argument("--topology", type=str, default=None,
                     metavar="KINDS",
                     help="topo/ml: comma-separated interconnect kinds "
                          "(topo default: flat,fat_tree,ring; ml "
                          "default: flat,fat_tree)")
    run.add_argument("--topo-nodes", type=int, default=4,
                     help="topo/ml: nodes per topology (default 4)")
    run.add_argument("--topo-gpus", type=int, default=2,
                     help="topo/ml: GPUs per node (default 2)")
    run.add_argument("--backend", type=str, default=None, metavar="NAMES",
                     help="topo/ml/simperf: comma-separated "
                          "communication backends to sweep (proxy, "
                          "device, stream; default: proxy)")

    worker = sub.add_parser(
        "worker", help="serve sweep jobs (stdio fleet member or HTTP "
                       "daemon)")
    mode = worker.add_mutually_exclusive_group(required=True)
    mode.add_argument("--stdio", action="store_true",
                      help="speak the frame protocol over stdin/stdout "
                           "(used by the subprocess executor)")
    mode.add_argument("--port", type=int, default=None,
                      help="serve HTTP on this port (0 picks a free one)")
    worker.add_argument("--host", type=str, default="127.0.0.1",
                        help="HTTP bind address (default 127.0.0.1; "
                             "binding wider is an explicit decision)")

    status = sub.add_parser("status",
                            help="census the result cache + live sweep "
                                 "progress")
    status.add_argument("--cache-dir", type=str, default=DEFAULT_CACHE_DIR)

    cache = sub.add_parser("cache", help="cache maintenance")
    cache.add_argument("action", choices=("stats", "migrate", "gc",
                                          "clear"),
                       help="stats: census; migrate: move legacy entries "
                            "into shards; gc: drop stale generations; "
                            "clear: drop everything")
    cache.add_argument("--cache-dir", type=str, default=DEFAULT_CACHE_DIR)
    cache.add_argument("--shard", action="store_true",
                       help="stats: per-shard breakdown of the current "
                            "generation")

    return parser


def _cmd_run(args) -> int:
    kinds = (tuple(k.strip() for k in args.topology.split(",") if k.strip())
             if args.topology else None)
    backends = (tuple(b.strip() for b in args.backend.split(",")
                      if b.strip())
                if args.backend else None)
    suite = build_suite(args.suite, seeds=args.seeds, nodes=args.nodes,
                        ranks=args.ranks, steps=args.steps,
                        iterations=args.iterations,
                        verify=not args.no_verify, full=args.full,
                        topology=kinds, topo_nodes=args.topo_nodes,
                        topo_gpus=args.topo_gpus, backends=backends)
    workers = (args.workers if args.workers is not None
               else default_workers())
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    hosts = (tuple(h.strip() for h in args.hosts.split(",") if h.strip())
             if args.hosts else None)

    on_event = None
    if args.progress:
        def on_event(event):
            end = "\n" if event.kind == "finish" else ""
            print(f"\r{event.line()}", end=end, file=sys.stderr,
                  flush=True)

    report = run_specs(suite.specs, workers=workers, cache=cache,
                       shared=suite.shared, timeout=args.timeout,
                       executor=args.executor, hosts=hosts,
                       on_event=on_event)

    print(suite.assemble(report.results))
    print(f"engine: {report.summary()}")

    digest = canonical_digest(report.results)
    if not args.no_json:
        path = args.json or str(repo_root() / "BENCH_sweep.json")
        record = {
            "bench": "sweep",
            "suite": args.suite,
            "tasks": report.tasks,
            "executed": report.executed,
            "cache_hits": report.cache_hits,
            "cache_hit_rate": round(report.cache_hit_rate, 4),
            "dedup_hits": report.dedup_hits,
            "retries": report.retries,
            "workers": report.workers,
            "executor": report.executor,
            "wall_s": round(report.wall_s, 6),
            "results_digest": digest,
            "source_fingerprint": source_fingerprint()[:16],
        }
        with open(path, "w") as f:
            json.dump(record, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"record: {path}")
    print(f"results digest: {digest[:16]}")

    if args.require_cached:
        cacheable = sum(1 for s in suite.specs if s.cacheable)
        served = report.cache_hits + report.dedup_hits
        if cache is None or served < cacheable:
            print(f"require-cached: FAILED — {served}/"
                  f"{cacheable} cacheable task(s) served from cache",
                  file=sys.stderr)
            return EXIT_NOT_CACHED
        print(f"require-cached: ok ({served}/{cacheable})")
    return 0


def _cmd_worker(args) -> int:
    from .worker import serve_http, serve_stdio

    if args.stdio:
        return serve_stdio()
    print(f"worker: serving HTTP on {args.host}:{args.port} "
          "(Ctrl-C to stop)", file=sys.stderr)
    try:
        serve_http(args.port, host=args.host)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    return 0


def _read_status(cache_root) -> Optional[dict]:
    try:
        return json.loads((cache_root / STATUS_FILENAME).read_text())
    except (OSError, ValueError):
        return None


def _progress_line(record: dict) -> str:
    parts = [f"{record.get('done', 0)}/{record.get('total', 0)} done",
             f"{record.get('cache_hits', 0)} cached"]
    if record.get("dedup_hits"):
        parts.append(f"{record['dedup_hits']} dedup")
    if record.get("retries"):
        parts.append(f"{record['retries']} retried")
    if record.get("quarantined"):
        parts.append(f"{record['quarantined']} quarantined")
    state = record.get("state", "?")
    executor = record.get("executor", "?")
    return f"{state} [{executor}]: " + ", ".join(parts)


def _print_census(cache: ResultCache, shard: bool = False) -> None:
    stats = cache.stats()
    print(f"cache root:     {stats.root}")
    print(f"fingerprint:    {stats.fingerprint[:16]}")
    print(f"generations:    {stats.generations}")
    print(f"shards:         {stats.shards or '(generation absent)'}")
    print(f"live entries:   {stats.entries} ({stats.bytes} bytes)")
    if stats.legacy_entries:
        print(f"legacy entries: {stats.legacy_entries} (unsharded; run "
              "'cache migrate' or let reads migrate them)")
    print(f"stale entries:  {stats.stale_entries} ({stats.stale_bytes} "
          "bytes, reclaimable via 'cache gc')")
    status = _read_status(cache.root)
    if status is not None:
        print(f"last sweep:     {_progress_line(status)}")
    if shard:
        if not stats.shard_breakdown:
            print("shard breakdown: (no sharded entries yet)")
        for row in stats.shard_breakdown:
            print(f"  {row.name}: {row.entries} entr"
                  f"{'y' if row.entries == 1 else 'ies'}, "
                  f"{row.bytes} bytes")


def _cmd_status(args) -> int:
    _print_census(ResultCache(args.cache_dir))
    return 0


def _cmd_cache(args) -> int:
    cache = ResultCache(args.cache_dir)
    if args.action == "stats":
        _print_census(cache, shard=args.shard)
    elif args.action == "migrate":
        migrated, dropped = cache.migrate()
        print(f"migrate: moved {migrated} legacy entr"
              f"{'y' if migrated == 1 else 'ies'} into shards, dropped "
              f"{dropped} corrupt")
    elif args.action == "gc":
        removed, freed = cache.gc()
        print(f"gc: removed {removed} stale entr{'y' if removed == 1 else 'ies'}, "
              f"freed {freed} bytes")
    else:
        removed, freed = cache.clear()
        print(f"clear: removed {removed} entr{'y' if removed == 1 else 'ies'}, "
              f"freed {freed} bytes")
    return 0


def main(argv: Optional[list] = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "worker":
            return _cmd_worker(args)
        if args.command == "status":
            return _cmd_status(args)
        return _cmd_cache(args)
    except DCudaError as exc:  # pragma: no cover - CLI error surface
        print(f"error[{exc.code}]: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
