"""Command-line sweep runner: ``python -m repro.exec``.

Subcommands::

    run <suite>     execute a named sweep (chaos, fig6..fig11, topo,
                    ml, simperf)
    status          census the result cache
    cache gc        delete entries from stale source fingerprints
    cache clear     delete every cache entry

``run`` prints the suite's table, an engine summary line, and writes the
machine-readable sweep record to ``BENCH_sweep.json`` at the repo root:
wall-clock, worker count, cache hit rate, and the canonical digest of the
merged result list.  The digest is the bit-identity witness — it is a
pure function of the spec list, so any two invocations of the same suite
at the same source fingerprint must print the same digest regardless of
worker count, completion order, or cache state.

``--require-cached`` exits with status 3 unless *every* cacheable task
was served from the cache — CI uses it to assert that a warm replay does
zero simulation work.

Examples::

    PYTHONPATH=src python -m repro.exec run chaos --seeds 50 --workers 4
    PYTHONPATH=src python -m repro.exec run fig6 --workers 2
    PYTHONPATH=src python -m repro.exec run fig6 --require-cached
    PYTHONPATH=src python -m repro.exec status
    PYTHONPATH=src python -m repro.exec cache gc
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from ..errors import DCudaError
from .cache import DEFAULT_CACHE_DIR, ResultCache
from .engine import default_workers, run_specs
from .fingerprint import repo_root, source_fingerprint
from .spec import canonical_digest
from .suites import SUITE_NAMES, build_suite

__all__ = ["main"]

#: Exit status for ``--require-cached`` violations (2 is argparse's).
EXIT_NOT_CACHED = 3


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.exec",
        description="Deterministic parallel sweep runner with "
                    "content-addressed caching.")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute a named sweep")
    run.add_argument("suite", choices=SUITE_NAMES,
                     help="which sweep to run")
    run.add_argument("--workers", "-j", type=int, default=None,
                     help="worker processes (default: $REPRO_EXEC_WORKERS "
                          "or 1 = serial)")
    run.add_argument("--cache-dir", type=str, default=DEFAULT_CACHE_DIR,
                     help=f"result cache directory (default: "
                          f"{DEFAULT_CACHE_DIR})")
    run.add_argument("--no-cache", action="store_true",
                     help="execute everything; neither read nor write "
                          "the cache")
    run.add_argument("--timeout", type=float, default=None, metavar="S",
                     help="per-task wall-clock budget in seconds "
                          "(parallel mode)")
    run.add_argument("--json", type=str, default=None, metavar="PATH",
                     help="sweep record path (default: BENCH_sweep.json "
                          "at the repo root)")
    run.add_argument("--no-json", action="store_true",
                     help="skip writing the sweep record")
    run.add_argument("--require-cached", action="store_true",
                     help=f"exit {EXIT_NOT_CACHED} unless every cacheable "
                          "task was a cache hit")
    # Suite shape knobs (each suite reads the subset it understands).
    run.add_argument("--seeds", type=int, default=50,
                     help="chaos: number of fault seeds (default 50)")
    run.add_argument("--nodes", type=int, default=2,
                     help="chaos: cluster size (default 2)")
    run.add_argument("--ranks", type=int, default=2,
                     help="chaos: ranks per device (default 2)")
    run.add_argument("--steps", type=int, default=2,
                     help="chaos: diffusion steps (default 2)")
    run.add_argument("--iterations", type=int, default=30,
                     help="fig6: ping-pong iterations (default 30)")
    run.add_argument("--no-verify", action="store_true",
                     help="fig9-11: skip reference verification")
    run.add_argument("--full", action="store_true",
                     help="simperf: figure-scale workload")
    run.add_argument("--topology", type=str, default=None,
                     metavar="KINDS",
                     help="topo/ml: comma-separated interconnect kinds "
                          "(topo default: flat,fat_tree,ring; ml "
                          "default: flat,fat_tree)")
    run.add_argument("--topo-nodes", type=int, default=4,
                     help="topo/ml: nodes per topology (default 4)")
    run.add_argument("--topo-gpus", type=int, default=2,
                     help="topo/ml: GPUs per node (default 2)")
    run.add_argument("--backend", type=str, default=None, metavar="NAMES",
                     help="topo/ml/simperf: comma-separated "
                          "communication backends to sweep (proxy, "
                          "device, stream; default: proxy)")

    status = sub.add_parser("status", help="census the result cache")
    status.add_argument("--cache-dir", type=str, default=DEFAULT_CACHE_DIR)

    cache = sub.add_parser("cache", help="cache maintenance")
    cache.add_argument("action", choices=("gc", "clear"),
                       help="gc: drop stale generations; clear: drop "
                            "everything")
    cache.add_argument("--cache-dir", type=str, default=DEFAULT_CACHE_DIR)

    return parser


def _cmd_run(args) -> int:
    kinds = (tuple(k.strip() for k in args.topology.split(",") if k.strip())
             if args.topology else None)
    backends = (tuple(b.strip() for b in args.backend.split(",")
                      if b.strip())
                if args.backend else None)
    suite = build_suite(args.suite, seeds=args.seeds, nodes=args.nodes,
                        ranks=args.ranks, steps=args.steps,
                        iterations=args.iterations,
                        verify=not args.no_verify, full=args.full,
                        topology=kinds, topo_nodes=args.topo_nodes,
                        topo_gpus=args.topo_gpus, backends=backends)
    workers = (args.workers if args.workers is not None
               else default_workers())
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    report = run_specs(suite.specs, workers=workers, cache=cache,
                       shared=suite.shared, timeout=args.timeout)

    print(suite.assemble(report.results))
    print(f"engine: {report.summary()}")

    digest = canonical_digest(report.results)
    if not args.no_json:
        path = args.json or str(repo_root() / "BENCH_sweep.json")
        record = {
            "bench": "sweep",
            "suite": args.suite,
            "tasks": report.tasks,
            "executed": report.executed,
            "cache_hits": report.cache_hits,
            "cache_hit_rate": round(report.cache_hit_rate, 4),
            "workers": report.workers,
            "wall_s": round(report.wall_s, 6),
            "results_digest": digest,
            "source_fingerprint": source_fingerprint()[:16],
        }
        with open(path, "w") as f:
            json.dump(record, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"record: {path}")
    print(f"results digest: {digest[:16]}")

    if args.require_cached:
        cacheable = sum(1 for s in suite.specs if s.cacheable)
        if cache is None or report.cache_hits < cacheable:
            print(f"require-cached: FAILED — {report.cache_hits}/"
                  f"{cacheable} cacheable task(s) served from cache",
                  file=sys.stderr)
            return EXIT_NOT_CACHED
        print(f"require-cached: ok ({report.cache_hits}/{cacheable})")
    return 0


def _cmd_status(args) -> int:
    stats = ResultCache(args.cache_dir).stats()
    print(f"cache root:     {stats.root}")
    print(f"fingerprint:    {stats.fingerprint[:16]}")
    print(f"generations:    {stats.generations}")
    print(f"live entries:   {stats.entries} ({stats.bytes} bytes)")
    print(f"stale entries:  {stats.stale_entries} ({stats.stale_bytes} "
          "bytes, reclaimable via 'cache gc')")
    return 0


def _cmd_cache(args) -> int:
    cache = ResultCache(args.cache_dir)
    if args.action == "gc":
        removed, freed = cache.gc()
        print(f"gc: removed {removed} stale entr{'y' if removed == 1 else 'ies'}, "
              f"freed {freed} bytes")
    else:
        removed, freed = cache.clear()
        print(f"clear: removed {removed} entr{'y' if removed == 1 else 'ies'}, "
              f"freed {freed} bytes")
    return 0


def main(argv: Optional[list] = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "status":
            return _cmd_status(args)
        return _cmd_cache(args)
    except DCudaError as exc:  # pragma: no cover - CLI error surface
        print(f"error[{exc.code}]: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
