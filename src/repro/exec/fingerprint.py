"""Source-tree fingerprint: the cache's second key dimension.

A cached result is only valid while the code that produced it is
unchanged, so every cache entry lives under a *fingerprint* — a sha256
digest over the relative path and content of every ``*.py`` file in the
``repro`` package.  Editing any source file (a cost-model constant, a
scheduler fast path, an entrypoint) moves the fingerprint, which silently
invalidates the whole cache generation: stale entries are never *read*
again and ``python -m repro.exec cache gc`` reclaims their disk space.

The walk is cheap (~100 small files) but not free, so the result is
memoized per process per root — a single CLI invocation or test session
fingerprints the tree once.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Dict, Optional

__all__ = ["source_fingerprint", "package_root", "repo_root"]

_MEMO: Dict[str, str] = {}


def package_root() -> Path:
    """Directory of the installed ``repro`` package (``src/repro``)."""
    import repro

    return Path(repro.__file__).resolve().parent


def repo_root() -> Path:
    """Repository root (where ``BENCH_*.json`` artifacts are written).

    Found by walking up from the package directory to the first parent
    containing ``pyproject.toml``; falls back to the current working
    directory for installed (non-checkout) layouts.
    """
    for parent in package_root().parents:
        if (parent / "pyproject.toml").exists():
            return parent
    return Path.cwd()


def source_fingerprint(root: Optional[Path] = None,
                       refresh: bool = False) -> str:
    """Digest the source tree under *root* (default: the repro package).

    Args:
        root: Directory to walk; every ``*.py`` below it contributes its
            relative path and content to the digest.
        refresh: Drop the per-process memo and re-walk (tests that edit
            source files on the fly need this; normal callers never do).

    Returns:
        A sha256 hex digest, stable for an unchanged tree and different
        for any content, rename, addition, or deletion of a source file.
    """
    base = Path(root) if root is not None else package_root()
    key = str(base)
    if not refresh and key in _MEMO:
        return _MEMO[key]
    h = hashlib.sha256()
    h.update(b"repro-src-v1")
    for path in sorted(base.rglob("*.py")):
        rel = path.relative_to(base).as_posix()
        h.update(b"P%d:" % len(rel) + rel.encode())
        h.update(hashlib.sha256(path.read_bytes()).digest())
    _MEMO[key] = h.hexdigest()
    return _MEMO[key]
