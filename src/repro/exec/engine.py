"""The deterministic sweep engine: one call, any executor.

:func:`run_specs` is the stable library surface from PR 4; since the
sweep-as-a-service refactor it is a thin wrapper that picks an executor
transport (:mod:`repro.exec.executors`) and hands the spec list to the
:class:`~repro.exec.coordinator.Coordinator`, which owns merging,
caching, in-flight dedup, retry-on-worker-loss, and quarantine.

Determinism argument (the proof sketch expanded in
``docs/performance.md`` and ``docs/sweep_service.md``): every
entrypoint is a *pure function* of ``(params, shared)`` — each task
builds its own :class:`~repro.sim.Environment` and cluster from config
data, the simulator is fully deterministic given its inputs, and
workers share no mutable state (fresh interpreters).  The coordinator
assigns each spec an index at submission, executes tasks in whatever
order on whichever transport, and merges results *by index*.  Therefore
the merged result list is a pure function of the spec list alone —
bit-identical for any executor, worker count, shard count, and any
sequence of worker deaths survived by retry.  The golden-timestamp
fixture, the chaos contract, and the worker-loss fuzz harness
(``tests/exec/``) enforce this empirically.

Failure surface: a task that raises a typed
:class:`~repro.errors.DCudaError` propagates it unchanged; any other
exception in a worker is wrapped in
:class:`~repro.errors.DCudaWorkerError` carrying the task label and the
original traceback text, and a per-task ``timeout`` (a stuck worker is
terminated) surfaces as :class:`~repro.errors.DCudaTimeoutError`.  A
worker that *dies* is not a task failure: the coordinator re-dispatches
the in-flight job to a surviving (or respawned) worker up to its
attempt budget, and only a spec that kills distinct workers on every
attempt is quarantined into a single typed
:class:`~repro.errors.DCudaWorkerError` after the rest of the sweep
completes.  Serial execution runs in-process and lets exceptions
propagate raw — the debugging-friendly behaviour of the historical
inline loops.  ("Re-run serially" is a debugging aid, not the recovery
path; recovery is the coordinator's retry/quarantine loop.)

Caching: pass a :class:`~repro.exec.cache.ResultCache` (or a directory
path) and every cacheable spec is first probed by content key against
the sharded store; hits skip execution entirely, misses execute and are
published atomically, so an unchanged sweep replays near-instantly and
an interrupted sweep resumes from its completed prefix.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Mapping, Optional, Sequence, Union

from ..errors import DCudaUsageError
from .cache import ResultCache
from .coordinator import Coordinator, ProgressEvent, SweepReport
from .executors import EXECUTOR_NAMES, Executor, build_executor
from .spec import RunSpec

__all__ = ["SweepReport", "run_specs", "default_workers",
           "default_executor_name", "WORKERS_ENV", "EXECUTOR_ENV",
           "HOSTS_ENV"]

#: Environment knob consulted when ``workers`` is not given explicitly:
#: tests and CI set ``REPRO_EXEC_WORKERS=2`` to exercise the pool without
#: every call site growing a flag.
WORKERS_ENV = "REPRO_EXEC_WORKERS"
#: Environment knob for the executor transport (``serial`` / ``local`` /
#: ``subprocess`` / ``http``); same opt-in philosophy as the worker knob.
EXECUTOR_ENV = "REPRO_EXEC_EXECUTOR"
#: Comma-separated ``host:port`` list for the ``http`` transport.
HOSTS_ENV = "REPRO_EXEC_HOSTS"


def default_workers() -> int:
    """Worker count when unspecified: ``$REPRO_EXEC_WORKERS`` or 1.

    Serial is the deliberate default — library callers (tier-1 tests,
    the golden capture) stay deterministic-cheap, and parallelism is an
    explicit opt-in via flag or environment.
    """
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        raise DCudaUsageError(
            f"{WORKERS_ENV} must be an integer, got {raw!r}") from None


def default_executor_name(workers: int) -> str:
    """Transport when unspecified: ``$REPRO_EXEC_EXECUTOR``, else by
    worker count (1 ⇒ ``serial``, more ⇒ ``local``)."""
    raw = os.environ.get(EXECUTOR_ENV, "").strip().lower()
    if raw:
        if raw not in EXECUTOR_NAMES:
            raise DCudaUsageError(
                f"{EXECUTOR_ENV} must be one of "
                f"{', '.join(EXECUTOR_NAMES)}; got {raw!r}")
        return raw
    return "serial" if workers <= 1 else "local"


def _env_hosts() -> tuple:
    raw = os.environ.get(HOSTS_ENV, "").strip()
    return tuple(h.strip() for h in raw.split(",") if h.strip())


def _resolve_executor(executor, workers: int, hosts):
    """Normalize the ``executor`` argument to ``(Executor, fallback)``.

    ``fallback`` enables the coordinator's serial shortcut for *auto-
    built process transports* — the historical "don't spin up a pool
    for one task" behaviour.  An executor instance the caller built is
    used exactly as given; an explicit ``http`` transport keeps its
    remote workers even for tiny sweeps (the point may be the remote
    environment).
    """
    if isinstance(executor, Executor):
        return executor, False
    if executor is None:
        executor = default_executor_name(workers)
    if not isinstance(executor, str):
        raise DCudaUsageError(
            f"executor must be an Executor instance or one of "
            f"{', '.join(EXECUTOR_NAMES)}; got {executor!r}")
    hosts = tuple(hosts or ()) or _env_hosts()
    built = build_executor(executor, workers=workers, hosts=hosts)
    return built, executor in ("local", "subprocess")


def run_specs(specs: Sequence[RunSpec], *,
              workers: Optional[int] = None,
              cache: Union[ResultCache, os.PathLike, str, None] = None,
              shared: Optional[Mapping[str, Any]] = None,
              timeout: Optional[float] = None,
              executor: Union[Executor, str, None] = None,
              hosts: Optional[Sequence[str]] = None,
              on_event: Optional[Callable[[ProgressEvent], None]] = None,
              max_attempts: int = 3) -> SweepReport:
    """Execute a sweep of :class:`RunSpec` tasks; results in spec order.

    Args:
        specs: The tasks.  Each must reference a registered entrypoint.
        workers: Process count; ``None`` consults ``$REPRO_EXEC_WORKERS``
            (default 1 = serial in-process).  Values > 1 use a process
            transport for crash isolation and true parallelism.
        cache: ``None`` (no caching), a :class:`ResultCache`, or a
            directory path to open one at.
        shared: Payload shipped to every worker once and passed to every
            entrypoint — e.g. the chaos baseline field.  Its canonical
            digest salts every cache key, so a changed shared input
            invalidates cached results.
        timeout: Per-task wall-clock budget [s].  Enforced on preemptive
            (process) transports — a stuck worker is terminated; serial
            execution cannot preempt a running task and ignores it.
        executor: Transport: an :class:`~repro.exec.executors.Executor`
            instance, a name from
            :data:`~repro.exec.executors.EXECUTOR_NAMES`, or ``None``
            to consult ``$REPRO_EXEC_EXECUTOR`` and fall back to
            ``serial``/``local`` by worker count.
        hosts: ``host:port`` worker daemons for the ``http`` transport
            (``$REPRO_EXEC_HOSTS`` when omitted).
        on_event: Optional progress callback receiving
            :class:`~repro.exec.coordinator.ProgressEvent` updates.
        max_attempts: Dispatch budget per spec across worker losses
            before quarantine.

    Returns:
        A :class:`SweepReport`; ``.results[i]`` corresponds to
        ``specs[i]`` regardless of executor, worker count, or
        completion order.

    Raises:
        DCudaUsageError: Unknown entrypoint, executor, or bad knobs.
        DCudaTimeoutError: A task exceeded *timeout* (process modes).
        DCudaWorkerError: A task raised an untyped exception in a
            worker, or a spec was quarantined after exhausting its
            dispatch attempts on distinct workers (serial execution
            propagates task exceptions raw).
    """
    if workers is None:
        workers = default_workers()
    workers = max(1, int(workers))
    ex, fallback = _resolve_executor(executor, workers, hosts)
    coordinator = Coordinator(ex, cache=cache, max_attempts=max_attempts,
                              on_event=on_event, workers_hint=workers,
                              serial_fallback=fallback)
    return coordinator.run(specs, shared=shared, timeout=timeout)
