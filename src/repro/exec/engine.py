"""The deterministic parallel runner for simulation sweeps.

Determinism argument (the proof sketch expanded in
``docs/performance.md``): every entrypoint is a *pure function* of
``(params, shared)`` — each task builds its own
:class:`~repro.sim.Environment` and cluster from config data, the
simulator is fully deterministic given its inputs, and workers share no
mutable state (spawned fresh interpreters).  The engine assigns each
spec an index at submission, executes tasks in whatever order and on
however many workers, and merges results *by index*.  Therefore the
merged result list is a pure function of the spec list alone —
bit-identical for 1, 2, or N workers, regardless of completion order.
The golden-timestamp fixture and the chaos contract replayed through the
engine (``tests/exec/``) enforce this empirically.

Failure surface (crash isolation, parallel mode): a task that raises a
typed :class:`~repro.errors.DCudaError` propagates it unchanged; any
other exception — including a worker process dying outright — is wrapped
in :class:`~repro.errors.DCudaWorkerError` carrying the task label and
the original traceback text, and a per-task ``timeout`` (a stuck worker
is terminated) surfaces as :class:`~repro.errors.DCudaTimeoutError`.
Serial execution runs in-process and lets exceptions propagate raw — the
debugging-friendly behaviour of the historical inline loops, and the
reason "re-run serially" is the remediation for worker failures.

Caching: pass a :class:`~repro.exec.cache.ResultCache` (or a directory
path) and every cacheable spec is first probed by content key; hits skip
execution entirely, misses execute and are stored, so an unchanged sweep
replays near-instantly and an interrupted sweep resumes from its
completed prefix.
"""

from __future__ import annotations

import concurrent.futures
import os
import pickle
import time
import traceback
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from ..errors import DCudaTimeoutError, DCudaUsageError, DCudaWorkerError
from .cache import ResultCache
from .spec import RunSpec, canonical_digest, resolve_entrypoint

__all__ = ["SweepReport", "run_specs", "default_workers"]

#: Environment knob consulted when ``workers`` is not given explicitly:
#: tests and CI set ``REPRO_EXEC_WORKERS=2`` to exercise the pool without
#: every call site growing a flag.
WORKERS_ENV = "REPRO_EXEC_WORKERS"


@dataclass
class SweepReport:
    """Outcome of one :func:`run_specs` call.

    ``results`` is in submission order — index ``i`` is the result of
    ``specs[i]`` — independent of worker count and completion order.
    """

    results: List[Any]
    tasks: int
    executed: int
    cache_hits: int
    workers: int
    wall_s: float

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of tasks served from the cache (0.0 for empty sweeps)."""
        return self.cache_hits / self.tasks if self.tasks else 0.0

    def summary(self) -> str:
        """One-line human-readable engine summary."""
        return (f"{self.tasks} task(s), {self.workers} worker(s), "
                f"{self.cache_hits} cache hit(s) "
                f"({self.cache_hit_rate:.0%}), {self.executed} executed, "
                f"{self.wall_s:.2f}s wall")


def default_workers() -> int:
    """Worker count when unspecified: ``$REPRO_EXEC_WORKERS`` or 1.

    Serial is the deliberate default — library callers (tier-1 tests,
    the golden capture) stay deterministic-cheap, and parallelism is an
    explicit opt-in via flag or environment.
    """
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        raise DCudaUsageError(
            f"{WORKERS_ENV} must be an integer, got {raw!r}") from None


# ------------------------------------------------------- worker side -----
_SHARED: Dict[str, Any] = {}


def _worker_init(shared_blob: bytes) -> None:
    """Pool initializer: install the shared payload, load the registry."""
    global _SHARED
    _SHARED = pickle.loads(shared_blob)
    from . import points  # noqa: F401  (registers all entrypoints)


def _execute_in_worker(entrypoint_name: str, params: Mapping[str, Any],
                       label: str) -> Any:
    """Top-level task body run inside a spawned worker process.

    Wraps untyped exceptions in :class:`DCudaWorkerError` (typed dCUDA
    errors pass through) so the parent always sees the typed surface and
    never an unpicklable or anonymous failure.
    """
    from ..errors import DCudaError

    fn = resolve_entrypoint(entrypoint_name)
    try:
        return fn(dict(params), _SHARED)
    except DCudaError:
        raise
    except Exception:
        raise DCudaWorkerError(
            f"task {label!r} ({entrypoint_name}) failed:\n"
            + traceback.format_exc()) from None


# ------------------------------------------------------- parent side -----
def _ensure_child_import_path():
    """Make sure spawned interpreters can ``import repro``.

    Returns the previous ``PYTHONPATH`` value (or ``None``) so the
    caller can restore it after the pool is done.
    """
    import repro

    pkg_parent = str(os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__))))
    prev = os.environ.get("PYTHONPATH")
    parts = prev.split(os.pathsep) if prev else []
    if pkg_parent not in parts:
        os.environ["PYTHONPATH"] = (
            pkg_parent + ((os.pathsep + prev) if prev else ""))
    return prev


def _restore_pythonpath(prev) -> None:
    if prev is None:
        os.environ.pop("PYTHONPATH", None)
    else:
        os.environ["PYTHONPATH"] = prev


def _run_parallel(todo, shared_blob: bytes, workers: int,
                  timeout: Optional[float]) -> Dict[int, Any]:
    """Execute ``todo = [(index, spec)]`` on a spawn pool; map by index."""
    import multiprocessing

    ctx = multiprocessing.get_context("spawn")
    out: Dict[int, Any] = {}
    prev_path = _ensure_child_import_path()
    executor = concurrent.futures.ProcessPoolExecutor(
        max_workers=min(workers, len(todo)), mp_context=ctx,
        initializer=_worker_init, initargs=(shared_blob,))
    try:
        futures = [(idx, spec, executor.submit(
            _execute_in_worker, spec.entrypoint, dict(spec.params),
            spec.describe())) for idx, spec in todo]
        for idx, spec, fut in futures:
            try:
                out[idx] = fut.result(timeout=timeout)
            except concurrent.futures.TimeoutError:
                for fut2 in (f for _, _, f in futures):
                    fut2.cancel()
                for proc in list(getattr(executor, "_processes",
                                         {}).values()):
                    proc.terminate()
                raise DCudaTimeoutError(
                    f"sweep task {spec.describe()!r} exceeded the "
                    f"per-task timeout of {timeout}s") from None
            except concurrent.futures.process.BrokenProcessPool:
                raise DCudaWorkerError(
                    f"worker process died while running "
                    f"{spec.describe()!r} (crash isolation: the parent "
                    "sweep survives; re-run serially to debug)") from None
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
        _restore_pythonpath(prev_path)
    return out


def run_specs(specs: Sequence[RunSpec], *,
              workers: Optional[int] = None,
              cache: Union[ResultCache, os.PathLike, str, None] = None,
              shared: Optional[Mapping[str, Any]] = None,
              timeout: Optional[float] = None) -> SweepReport:
    """Execute a sweep of :class:`RunSpec` tasks; results in spec order.

    Args:
        specs: The tasks.  Each must reference a registered entrypoint.
        workers: Process count; ``None`` consults ``$REPRO_EXEC_WORKERS``
            (default 1 = serial in-process).  Values > 1 use a spawn
            process pool for crash isolation and true parallelism.
        cache: ``None`` (no caching), a :class:`ResultCache`, or a
            directory path to open one at.
        shared: Payload shipped to every worker once (pool initializer)
            and passed to every entrypoint — e.g. the chaos baseline
            field.  Its canonical digest salts every cache key, so a
            changed shared input invalidates cached results.
        timeout: Per-task wall-clock budget [s].  Enforced in parallel
            mode (a stuck worker is terminated); serial execution cannot
            preempt a running task and ignores it.

    Returns:
        A :class:`SweepReport`; ``.results[i]`` corresponds to
        ``specs[i]`` regardless of worker count or completion order.

    Raises:
        DCudaUsageError: Unknown entrypoint or unhashable params.
        DCudaTimeoutError: A task exceeded *timeout* (parallel mode).
        DCudaWorkerError: A task raised an untyped exception or its
            worker process died (parallel mode; serial execution
            propagates task exceptions raw).
    """
    specs = list(specs)
    if workers is None:
        workers = default_workers()
    workers = max(1, int(workers))
    shared = dict(shared or {})
    t0 = time.perf_counter()

    if isinstance(cache, (str, os.PathLike)):
        cache = ResultCache(cache)
    shared_digest = canonical_digest(shared) if (cache and shared) else ""

    results: List[Any] = [None] * len(specs)
    hits = 0
    todo = []
    for idx, spec in enumerate(specs):
        if cache is not None and spec.cacheable:
            hit, value = cache.get(cache.key_for(spec, shared_digest))
            if hit:
                results[idx] = value
                hits += 1
                continue
        todo.append((idx, spec))

    if todo:
        if workers > 1 and len(todo) > 1:
            shared_blob = pickle.dumps(shared,
                                       protocol=pickle.HIGHEST_PROTOCOL)
            executed = _run_parallel(todo, shared_blob, workers, timeout)
        else:
            executed = {idx: resolve_entrypoint(spec.entrypoint)(
                dict(spec.params), shared) for idx, spec in todo}
        for idx, spec in todo:
            results[idx] = executed[idx]
            if cache is not None and spec.cacheable:
                cache.put(cache.key_for(spec, shared_digest),
                          executed[idx], label=spec.describe())

    return SweepReport(results=results, tasks=len(specs),
                       executed=len(todo), cache_hits=hits,
                       workers=workers,
                       wall_s=time.perf_counter() - t0)
