"""Pluggable sweep executors: one protocol, four transports.

The sweep service splits *what to run* (the coordinator,
:mod:`repro.exec.coordinator`) from *where it runs* (this module).  An
:class:`Executor` accepts :class:`Job` submissions and yields
:class:`Completion` events; everything else — ordering, caching, dedup,
retry — lives above the protocol, so every transport inherits the
bit-identity guarantee for free: results are merged by submission index
upstream, and an executor only ever influences *when* a completion
arrives, never *what* it contains.

Transports:

* :class:`SerialExecutor` — in-process, lazy execution at drain time;
  task exceptions propagate raw (the debugging-friendly historical
  behaviour of serial sweeps).
* :class:`LocalPoolExecutor` — the spawn process pool extracted verbatim
  from the PR 4 engine: fresh interpreters, shared payload shipped once
  via the pool initializer, untyped task exceptions wrapped in
  :class:`~repro.errors.DCudaWorkerError` on the worker side.  A broken
  pool is rebuilt on the next submit, so the coordinator can re-dispatch
  after worker loss.
* :class:`SubprocessWorkerExecutor` — long-lived worker processes
  (``python -m repro.exec worker --stdio``) speaking the length-prefixed
  pickle frame protocol of :mod:`repro.exec.worker` over stdin/stdout
  pipes.  Dead workers are detected by pipe EOF and respawned; this is
  the template for SSH transports (same frames over ``ssh host python -m
  repro.exec worker --stdio``).
* :class:`HTTPWorkerExecutor` — connects to worker daemons started with
  ``python -m repro.exec worker --port N``: the coordinator POSTs specs
  to ``/submit`` and polls ``/poll`` for completions, so workers can
  live on other hosts.  A connection failure marks the worker lost; the
  executor keeps probing ``/healthz`` and re-adopts a restarted daemon.

Worker identity: every :class:`Completion` names the worker that
produced (or died under) it.  The coordinator uses those names to
enforce the poisoned-spec rule — a spec that takes down *distinct*
workers on every attempt is quarantined instead of re-dispatched
forever.
"""

from __future__ import annotations

import abc
import concurrent.futures
import os
import pickle
import queue
import subprocess
import sys
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..errors import DCudaUsageError, DCudaWorkerError
from .spec import resolve_entrypoint

__all__ = [
    "Job",
    "Completion",
    "Executor",
    "SerialExecutor",
    "LocalPoolExecutor",
    "SubprocessWorkerExecutor",
    "HTTPWorkerExecutor",
    "build_executor",
    "EXECUTOR_NAMES",
]

#: Names accepted by :func:`build_executor` (and the CLIs' ``--executor``).
EXECUTOR_NAMES = ("serial", "local", "subprocess", "http")


@dataclass(frozen=True)
class Job:
    """One unit of executor work: a spec flattened to wire-friendly data.

    Args:
        job_id: Coordinator-assigned identity; echoed in the completion.
        entrypoint: Registered entrypoint name (:mod:`repro.exec.spec`).
        params: Picklable entrypoint parameters.
        label: Human-readable identity for progress and error messages.
    """

    job_id: int
    entrypoint: str
    params: Mapping[str, Any]
    label: str = ""


@dataclass
class Completion:
    """Outcome of one :class:`Job` attempt on one worker.

    Exactly one of three shapes: success (``ok=True``, ``value`` set),
    task failure (``error`` carries a typed
    :class:`~repro.errors.DCudaError`), or worker loss
    (``worker_lost=True`` — the job did *not* run to completion and may
    be re-dispatched).
    """

    job_id: int
    ok: bool = False
    value: Any = None
    error: Optional[BaseException] = None
    worker: str = ""
    worker_lost: bool = False


class Executor(abc.ABC):
    """The executor protocol every transport implements.

    Lifecycle: :meth:`start` once (with the shared payload), any number
    of :meth:`submit` / :meth:`next_completion` interleavings, then
    :meth:`stop`.  Implementations are thread-safe for one submitting
    thread plus internal harvester threads.

    Attributes:
        name: Transport name recorded in :class:`~repro.exec.engine.
            SweepReport` and progress events.
        preemptive: Whether the transport can abandon a running task
            (process kill).  The coordinator only enforces per-task
            timeouts on preemptive executors — serial execution cannot
            be interrupted, matching the historical engine contract.
    """

    name = "?"
    preemptive = True

    @abc.abstractmethod
    def start(self, shared: Mapping[str, Any],
              expected_jobs: Optional[int] = None) -> None:
        """Provision workers and ship them the shared payload once."""

    @abc.abstractmethod
    def submit(self, job: Job) -> None:
        """Enqueue *job* for execution on any available worker."""

    @abc.abstractmethod
    def next_completion(self, timeout: Optional[float] = None
                        ) -> Optional[Completion]:
        """Block for the next completion; ``None`` when *timeout* expires."""

    @abc.abstractmethod
    def stop(self, force: bool = False) -> None:
        """Tear down workers (``force`` kills instead of draining)."""

    def alive_workers(self) -> int:
        """Workers currently able to take jobs (after any respawning)."""
        return 1

    def worker_pids(self) -> List[int]:
        """PIDs of live worker processes (empty when not applicable).

        Exists for the worker-loss chaos harness: tests kill real
        workers mid-campaign and assert the merged digest is unchanged.
        """
        return []

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.stop(force=True)


# --------------------------------------------------------------- serial -----
class SerialExecutor(Executor):
    """In-process execution, one job at a time, at drain time.

    Jobs queue up on :meth:`submit` and run inside
    :meth:`next_completion` — keeping the protocol uniform while
    preserving the historical serial semantics: exceptions (typed or
    not) propagate raw to the caller, with a full in-process traceback.
    """

    name = "serial"
    preemptive = False

    def __init__(self):
        self._pending: List[Job] = []
        self._shared: Mapping[str, Any] = {}

    def start(self, shared, expected_jobs=None):
        self._shared = dict(shared or {})

    def submit(self, job):
        self._pending.append(job)

    def next_completion(self, timeout=None):
        if not self._pending:
            return None
        job = self._pending.pop(0)
        fn = resolve_entrypoint(job.entrypoint)
        value = fn(dict(job.params), self._shared)
        return Completion(job.job_id, ok=True, value=value, worker="serial")

    def stop(self, force=False):
        self._pending.clear()


# ----------------------------------------------------------- local pool -----
_SHARED: Dict[str, Any] = {}


def _worker_init(shared_blob: bytes) -> None:
    """Pool initializer: install the shared payload, load the registry."""
    global _SHARED
    _SHARED = pickle.loads(shared_blob)
    from . import points  # noqa: F401  (registers all entrypoints)


def _execute_in_worker(entrypoint_name: str, params: Mapping[str, Any],
                       label: str) -> Any:
    """Top-level task body run inside a spawned worker process.

    Wraps untyped exceptions in :class:`DCudaWorkerError` (typed dCUDA
    errors pass through) so the parent always sees the typed surface and
    never an unpicklable or anonymous failure.
    """
    from ..errors import DCudaError

    fn = resolve_entrypoint(entrypoint_name)
    try:
        return fn(dict(params), _SHARED)
    except DCudaError:
        raise
    except Exception:
        raise DCudaWorkerError(
            f"task {label!r} ({entrypoint_name}) failed:\n"
            + traceback.format_exc()) from None


def _ensure_child_import_path():
    """Make sure spawned interpreters can ``import repro``.

    Returns the previous ``PYTHONPATH`` value (or ``None``) so the
    caller can restore it after the pool is done.
    """
    import repro

    pkg_parent = str(os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__))))
    prev = os.environ.get("PYTHONPATH")
    parts = prev.split(os.pathsep) if prev else []
    if pkg_parent not in parts:
        os.environ["PYTHONPATH"] = (
            pkg_parent + ((os.pathsep + prev) if prev else ""))
    return prev


def _restore_pythonpath(prev) -> None:
    if prev is None:
        os.environ.pop("PYTHONPATH", None)
    else:
        os.environ["PYTHONPATH"] = prev


class LocalPoolExecutor(Executor):
    """Spawn process pool — the PR 4 engine's pool behind the protocol.

    Crash isolation is pool-generation based: a worker death breaks the
    whole :class:`concurrent.futures.ProcessPoolExecutor`, so every
    in-flight job surfaces as a ``worker_lost`` completion attributed to
    the current pool generation, and the next :meth:`submit` builds a
    fresh pool (a new generation = a new worker identity for the
    coordinator's distinct-worker quarantine rule).

    Args:
        workers: Pool size (capped at the expected job count on start).
    """

    name = "local"

    def __init__(self, workers: int = 2):
        self.workers = max(1, int(workers))
        self._pool = None
        self._generation = 0
        self._completions: "queue.Queue[Completion]" = queue.Queue()
        self._shared_blob = pickle.dumps({},
                                         protocol=pickle.HIGHEST_PROTOCOL)
        self._prev_path = None
        self._path_saved = False
        self._max_workers = self.workers
        self._lock = threading.Lock()
        self._stopped = False

    def start(self, shared, expected_jobs=None):
        self._shared_blob = pickle.dumps(dict(shared or {}),
                                         protocol=pickle.HIGHEST_PROTOCOL)
        self._max_workers = (min(self.workers, expected_jobs)
                             if expected_jobs else self.workers)
        self._max_workers = max(1, self._max_workers)
        self._prev_path = _ensure_child_import_path()
        self._path_saved = True
        self._build_pool()

    def _build_pool(self):
        import multiprocessing

        ctx = multiprocessing.get_context("spawn")
        self._generation += 1
        self._pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=self._max_workers, mp_context=ctx,
            initializer=_worker_init, initargs=(self._shared_blob,))

    def submit(self, job):
        from ..errors import DCudaError

        with self._lock:
            if self._pool is None:
                self._build_pool()
            gen = self._generation
            try:
                fut = self._pool.submit(_execute_in_worker, job.entrypoint,
                                        dict(job.params), job.label)
            except Exception:
                # Pool already broken/shut down: rebuild once and retry.
                self._teardown_pool()
                self._build_pool()
                gen = self._generation
                fut = self._pool.submit(_execute_in_worker, job.entrypoint,
                                        dict(job.params), job.label)

        worker = f"pool-gen{gen}"

        def _harvest(f):
            if self._stopped:
                return
            if f.cancelled():
                # A queued task cancelled by a pool teardown never ran:
                # report it as worker loss so the coordinator re-dispatches
                # instead of waiting forever.
                self._completions.put(Completion(
                    job.job_id, worker=worker, worker_lost=True))
                return
            try:
                value = f.result()
            except concurrent.futures.process.BrokenProcessPool:
                with self._lock:
                    if self._generation == gen:
                        self._teardown_pool()
                self._completions.put(Completion(
                    job.job_id, worker=worker, worker_lost=True))
            except DCudaError as exc:
                self._completions.put(Completion(
                    job.job_id, error=exc, worker=worker))
            except BaseException as exc:  # pickling surprises, cancels
                self._completions.put(Completion(
                    job.job_id,
                    error=DCudaWorkerError(
                        f"task {job.label!r} failed in the pool: {exc!r}"),
                    worker=worker))
            else:
                self._completions.put(Completion(
                    job.job_id, ok=True, value=value, worker=worker))

        fut.add_done_callback(_harvest)

    def _teardown_pool(self):
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            procs = getattr(self._pool, "_processes", None) or {}
            for proc in list(procs.values()):
                try:
                    proc.terminate()
                except OSError:
                    pass
            self._pool = None

    def next_completion(self, timeout=None):
        try:
            return self._completions.get(timeout=timeout)
        except queue.Empty:
            return None

    def alive_workers(self):
        return self._max_workers if not self._stopped else 0

    def worker_pids(self):
        with self._lock:
            if self._pool is None:
                return []
            procs = getattr(self._pool, "_processes", None) or {}
            return [p.pid for p in procs.values()]

    def stop(self, force=False):
        self._stopped = True
        with self._lock:
            self._teardown_pool()
        # Restore PYTHONPATH only if *this* executor's start() changed
        # it — keying off os.environ instead would make a second stop()
        # (or a stop() without start()) delete the caller's own value.
        if self._path_saved:
            _restore_pythonpath(self._prev_path)
            self._prev_path = None
            self._path_saved = False


# ---------------------------------------------------- subprocess workers -----
class _PipeWorker:
    """One long-lived stdio worker process + its reader thread."""

    def __init__(self, executor: "SubprocessWorkerExecutor", slot: int):
        self.executor = executor
        self.slot = slot
        self.proc: Optional[subprocess.Popen] = None
        self.current: Optional[Job] = None
        self.alive = False
        self.thread: Optional[threading.Thread] = None

    @property
    def ident(self) -> str:
        pid = self.proc.pid if self.proc else "?"
        return f"worker-{self.slot}-pid{pid}"

    def spawn(self):
        from .worker import send_frame

        env = dict(os.environ)
        prev = _ensure_child_import_path()
        env["PYTHONPATH"] = os.environ["PYTHONPATH"]
        _restore_pythonpath(prev)
        self.proc = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro.exec", "worker",
             "--stdio"],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL, env=env)
        send_frame(self.proc.stdin, {"kind": "init",
                                     "shared": self.executor.shared_blob})
        self.alive = True
        self.thread = threading.Thread(target=self._read_loop, daemon=True)
        self.thread.start()

    def send_job(self, job: Job):
        from .worker import send_frame

        self.current = job
        send_frame(self.proc.stdin, {
            "kind": "job", "job_id": job.job_id,
            "entrypoint": job.entrypoint, "params": dict(job.params),
            "label": job.label})

    def _read_loop(self):
        from .worker import recv_frame

        proc = self.proc
        while True:
            try:
                frame = recv_frame(proc.stdout)
            except EOFError:
                frame = None
            except Exception:
                frame = None
            if frame is None:  # worker died (EOF) or stream corrupted
                self.executor._on_worker_death(self)
                return
            if frame.get("kind") == "ready":
                self.executor._on_worker_ready(self)
            elif frame.get("kind") == "done":
                self.executor._on_worker_done(self, frame)

    def terminate(self):
        self.alive = False
        if self.proc is not None and self.proc.poll() is None:
            try:
                self.proc.terminate()
            except OSError:
                pass


class SubprocessWorkerExecutor(Executor):
    """A fleet of long-lived ``worker --stdio`` processes over pipes.

    Each worker is a fresh interpreter running the frame loop of
    :mod:`repro.exec.worker`; the parent ships the shared payload once
    per worker, then feeds one job at a time.  A worker that dies (pipe
    EOF) yields a ``worker_lost`` completion for its in-flight job and
    is respawned — up to *respawn_limit* times across the fleet — so a
    sweep survives worker loss without losing its dispatch queue.

    Args:
        workers: Fleet size.
        respawn_limit: Total respawns allowed before dead slots stay
            dead (a poisoned campaign must not fork-bomb the host).
    """

    name = "subprocess"

    def __init__(self, workers: int = 2, respawn_limit: int = 16):
        self.workers = max(1, int(workers))
        self.respawn_limit = respawn_limit
        self.shared_blob = pickle.dumps({},
                                        protocol=pickle.HIGHEST_PROTOCOL)
        self._fleet: List[_PipeWorker] = []
        self._pending: List[Job] = []
        self._completions: "queue.Queue[Completion]" = queue.Queue()
        self._lock = threading.Lock()
        self._respawns = 0
        self._stopped = False

    def start(self, shared, expected_jobs=None):
        self.shared_blob = pickle.dumps(dict(shared or {}),
                                        protocol=pickle.HIGHEST_PROTOCOL)
        count = (min(self.workers, expected_jobs)
                 if expected_jobs else self.workers)
        for slot in range(max(1, count)):
            worker = _PipeWorker(self, slot)
            worker.spawn()
            self._fleet.append(worker)

    # Reader-thread callbacks ------------------------------------------------
    def _on_worker_ready(self, worker: _PipeWorker):
        with self._lock:
            if self._pending and worker.alive and worker.current is None:
                job = self._pending.pop(0)
                try:
                    worker.send_job(job)
                except OSError:
                    self._pending.insert(0, job)

    def _on_worker_done(self, worker: _PipeWorker, frame: Dict[str, Any]):
        with self._lock:
            worker.current = None
            next_job = self._pending.pop(0) if self._pending else None
            if next_job is not None:
                try:
                    worker.send_job(next_job)
                except OSError:
                    self._pending.insert(0, next_job)
        if frame.get("ok"):
            comp = Completion(frame["job_id"], ok=True,
                              value=frame.get("value"),
                              worker=worker.ident)
        else:
            comp = Completion(frame["job_id"], error=frame.get("error"),
                              worker=worker.ident)
        self._completions.put(comp)

    def _on_worker_death(self, worker: _PipeWorker):
        if self._stopped:
            return
        with self._lock:
            worker.alive = False
            lost, worker.current = worker.current, None
            ident = worker.ident
            respawn = self._respawns < self.respawn_limit
            if respawn:
                self._respawns += 1
        if lost is not None:
            self._completions.put(Completion(
                lost.job_id, worker=ident, worker_lost=True))
        if respawn:
            try:
                worker.spawn()
            except OSError:
                with self._lock:
                    worker.alive = False

    # Protocol ----------------------------------------------------------------
    def submit(self, job):
        with self._lock:
            for worker in self._fleet:
                if worker.alive and worker.current is None:
                    try:
                        worker.send_job(job)
                        return
                    except OSError:
                        continue
            self._pending.append(job)

    def next_completion(self, timeout=None):
        try:
            return self._completions.get(timeout=timeout)
        except queue.Empty:
            return None

    def alive_workers(self):
        with self._lock:
            live = sum(1 for w in self._fleet if w.alive)
            if self._respawns < self.respawn_limit:
                live = max(live, 1)  # a dead slot can still come back
            return live

    def worker_pids(self):
        with self._lock:
            return [w.proc.pid for w in self._fleet
                    if w.alive and w.proc is not None
                    and w.proc.poll() is None]

    def stop(self, force=False):
        from .worker import send_frame

        self._stopped = True
        with self._lock:
            fleet, self._fleet = self._fleet, []
            self._pending.clear()
        for worker in fleet:
            if not force and worker.proc is not None and worker.alive:
                try:
                    send_frame(worker.proc.stdin, {"kind": "shutdown"})
                except OSError:
                    pass
            worker.terminate()
        for worker in fleet:
            if worker.proc is not None:
                try:
                    worker.proc.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    worker.proc.kill()


# --------------------------------------------------------- HTTP workers -----
class _HttpWorkerClient(threading.Thread):
    """Dispatcher thread for one remote worker daemon."""

    def __init__(self, executor: "HTTPWorkerExecutor", host: str):
        super().__init__(daemon=True)
        self.executor = executor
        self.host = host
        self.alive = False
        self.stopping = False
        self.failures = 0

    def _request(self, method: str, path: str, body: bytes = b"",
                 timeout: float = 10.0) -> bytes:
        import http.client

        hostname, _, port = self.host.partition(":")
        conn = http.client.HTTPConnection(hostname, int(port or 80),
                                          timeout=timeout)
        try:
            conn.request(method, path, body=body or None,
                         headers={"Content-Type":
                                  "application/octet-stream"})
            resp = conn.getresponse()
            data = resp.read()
            if resp.status != 200:
                raise ConnectionError(
                    f"{self.host}{path} -> HTTP {resp.status}")
            return data
        finally:
            conn.close()

    def run(self):
        while not self.stopping:
            if not self.alive:
                if self._try_connect():
                    self.failures = 0
                else:
                    self.failures += 1
                    if (self.failures
                            > self.executor.max_reconnect_failures):
                        # Give up on a daemon that stays unreachable so
                        # the coordinator can fail typed, never hang.
                        self.stopping = True
                        return
                    time.sleep(self.executor.reconnect_interval)
                    continue
            job = self.executor._take_job()
            if job is None:
                if self.stopping:
                    return
                continue
            self._run_job(job)

    def _try_connect(self) -> bool:
        try:
            self._request("GET", "/healthz", timeout=2.0)
            self._request("POST", "/init", self.executor.shared_blob)
        except Exception:
            return False
        self.alive = True
        return True

    def _run_job(self, job: Job):
        ident = f"http:{self.host}"
        blob = pickle.dumps(
            {"job_id": job.job_id, "entrypoint": job.entrypoint,
             "params": dict(job.params), "label": job.label,
             "epoch": self.executor.epoch},
            protocol=pickle.HIGHEST_PROTOCOL)
        try:
            self._request("POST", "/submit", blob)
            while not self.stopping:
                data = self._request(
                    "GET", f"/poll?wait={self.executor.poll_wait}",
                    timeout=self.executor.poll_wait + 10.0)
                frames = pickle.loads(data) if data else []
                for frame in frames:
                    if frame.get("epoch") != self.executor.epoch:
                        # A dead session's straggler (the daemon ran a
                        # job whose client had already given up, then a
                        # new sweep reused the daemon).  Job ids are
                        # only unique within a sweep, so crediting it
                        # here would record a foreign result.  Drop it.
                        continue
                    if frame.get("ok"):
                        comp = Completion(frame["job_id"], ok=True,
                                          value=frame.get("value"),
                                          worker=ident)
                    else:
                        comp = Completion(frame["job_id"],
                                          error=frame.get("error"),
                                          worker=ident)
                    self.executor._completions.put(comp)
                    if frame["job_id"] == job.job_id:
                        return
        except Exception:
            self.alive = False
            self.executor._completions.put(Completion(
                job.job_id, worker=ident, worker_lost=True))

    def stop(self):
        self.stopping = True


class HTTPWorkerExecutor(Executor):
    """Dispatch to ``python -m repro.exec worker --port N`` daemons.

    The coordinator-facing contract matches every other transport; the
    wire protocol is deliberately minimal stdlib HTTP: ``POST /init``
    ships the shared payload, ``POST /submit`` enqueues one pickled job,
    ``GET /poll?wait=S`` long-polls for completion frames, and ``GET
    /healthz`` answers liveness probes.  Payloads are pickle and carry
    no authentication — the transport is for machines you already trust
    to run your code (the same trust model as SSH workers), not the open
    internet.

    A worker that stops answering marks its in-flight job
    ``worker_lost`` (the coordinator re-dispatches to surviving workers)
    and is probed in the background: restarting the daemon re-adopts the
    host mid-sweep.

    Args:
        hosts: ``"host:port"`` strings, one per worker daemon.
        poll_wait: Long-poll horizon [s] for ``GET /poll``.
        reconnect_interval: Seconds between liveness probes of a lost
            worker.
    """

    name = "http"

    def __init__(self, hosts: Sequence[str], poll_wait: float = 2.0,
                 reconnect_interval: float = 0.5,
                 max_reconnect_failures: int = 60):
        hosts = [h.strip() for h in hosts if h and h.strip()]
        if not hosts:
            raise DCudaUsageError(
                "HTTPWorkerExecutor needs at least one host:port "
                "(start workers with `python -m repro.exec worker "
                "--port N`)")
        self.hosts = hosts
        self.poll_wait = poll_wait
        self.reconnect_interval = reconnect_interval
        self.max_reconnect_failures = max_reconnect_failures
        self.shared_blob = pickle.dumps({},
                                        protocol=pickle.HIGHEST_PROTOCOL)
        #: Session tag: submitted with every job and echoed on its done
        #: frame, so a reused daemon's stale frames (from a sweep that
        #: gave this host up) are never credited to this sweep.
        self.epoch = f"{os.getpid():x}-{id(self):x}-{time.time_ns():x}"
        self._clients: List[_HttpWorkerClient] = []
        self._jobs: "queue.Queue[Optional[Job]]" = queue.Queue()
        self._completions: "queue.Queue[Completion]" = queue.Queue()

    def start(self, shared, expected_jobs=None):
        self.epoch = f"{os.getpid():x}-{id(self):x}-{time.time_ns():x}"
        self.shared_blob = pickle.dumps(dict(shared or {}),
                                        protocol=pickle.HIGHEST_PROTOCOL)
        for host in self.hosts:
            client = _HttpWorkerClient(self, host)
            client.start()
            self._clients.append(client)

    def _take_job(self) -> Optional[Job]:
        try:
            return self._jobs.get(timeout=0.2)
        except queue.Empty:
            return None

    def submit(self, job):
        self._jobs.put(job)

    def next_completion(self, timeout=None):
        try:
            return self._completions.get(timeout=timeout)
        except queue.Empty:
            return None

    def alive_workers(self):
        # A lost daemon may be restarted out-of-band, so a host keeps
        # counting until its client gives up (max_reconnect_failures).
        if not self._clients:
            return len(self.hosts)
        return len([c for c in self._clients if not c.stopping])

    def stop(self, force=False):
        for client in self._clients:
            client.stop()


def build_executor(name: str, *, workers: int = 2,
                   hosts: Optional[Sequence[str]] = None) -> Executor:
    """Construct an executor by transport name (the CLI surface).

    Args:
        name: One of :data:`EXECUTOR_NAMES`.
        workers: Fleet/pool size for ``local`` and ``subprocess``.
        hosts: ``host:port`` list for ``http``.

    Raises:
        DCudaUsageError: Unknown name, or ``http`` without hosts.
    """
    if name == "serial":
        return SerialExecutor()
    if name == "local":
        return LocalPoolExecutor(workers=workers)
    if name == "subprocess":
        return SubprocessWorkerExecutor(workers=workers)
    if name == "http":
        return HTTPWorkerExecutor(hosts or ())
    raise DCudaUsageError(
        f"unknown executor {name!r}; available: "
        f"{', '.join(EXECUTOR_NAMES)}")
