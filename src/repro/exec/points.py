"""Registered sweep entrypoints: every figure point as a pure function.

Each entrypoint turns one ``(params, shared)`` pair into one picklable
result object and builds *all* of its simulation state internally — a
fresh cluster from config data, nothing captured from the parent process
— which is what makes a :class:`~repro.exec.spec.RunSpec` executable in
a spawned worker and its result cacheable by content.

The model code stays where it lives (``repro.bench``, ``repro.faults``,
``repro.apps``); this module is the thin, import-lazy adapter layer the
worker processes load during pool initialization.  Two probes at the
bottom (``sleep_probe``, ``crash_probe``) exist for the engine's own
timeout/crash-isolation tests and do no simulation work.
"""

from __future__ import annotations

from typing import Any, Mapping

from .spec import entrypoint

__all__ = [
    "chaos_case",
    "pingpong_point",
    "topology_point",
    "overlap_point",
    "weak_scaling_point",
    "collective_point",
    "gemm_point",
    "train_point",
    "queue_burst_point",
    "staging_point",
    "simperf_probe",
    "sleep_probe",
    "crash_probe",
    "selftest_point",
]


@entrypoint("chaos_case")
def chaos_case(params: Mapping[str, Any], shared: Mapping[str, Any]):
    """One seeded fault-injection run of the diffusion mini-app.

    Params: ``seed``, ``num_nodes``, ``ranks_per_device``, optional
    ``wl`` (:class:`~repro.apps.diffusion.DiffusionWorkload`), ``cfg``
    (:class:`~repro.faults.config.FaultsConfig`), and ``comm_backend``
    (the chaos contract holds per backend; the param salts the spec
    digest so per-backend outcomes never share cache entries).  The
    fault-free baseline field arrives via ``shared["baseline"]`` —
    computed once by the sweep driver, not per worker — falling back to
    the per-process baseline cache when absent.

    Returns:
        A :class:`~repro.faults.report.ChaosOutcome`.
    """
    from ..faults.report import run_chaos_case

    return run_chaos_case(seed=params.get("seed"),
                          num_nodes=params.get("num_nodes", 2),
                          ranks_per_device=params.get("ranks_per_device", 2),
                          wl=params.get("wl"), cfg=params.get("cfg"),
                          baseline=shared.get("baseline"),
                          comm_backend=params.get("comm_backend", "proxy"))


@entrypoint("pingpong_point")
def pingpong_point(params: Mapping[str, Any], shared: Mapping[str, Any]):
    """One Fig. 6 ping-pong measurement.

    Params: ``shared_mem`` (bool), ``packet_bytes``, ``iterations``,
    optional ``cfg`` (:class:`~repro.hw.config.MachineConfig`) and
    ``comm_backend`` (builds a preset config when no ``cfg`` is given;
    either way the backend choice is part of the spec digest).

    Returns:
        A :class:`~repro.bench.pingpong.PingPongResult`.
    """
    from ..bench.pingpong import run_pingpong

    cfg = params.get("cfg")
    backend = params.get("comm_backend")
    if cfg is None and backend is not None:
        from ..hw.config import greina

        cfg = greina(comm_backend=backend)
    return run_pingpong(params["shared_mem"],
                        params.get("packet_bytes", 0),
                        params.get("iterations", 100),
                        cfg=cfg)


@entrypoint("topology_point")
def topology_point(params: Mapping[str, Any], shared: Mapping[str, Any]):
    """One ping-pong measurement on a declaratively built platform.

    Params: ``kind`` (``"flat"`` | ``"fat_tree"`` | ``"ring"``),
    ``num_nodes``, ``gpus_per_node``, ``oversubscription`` (fat-tree),
    ``a``/``b`` (the two ranks' ``(node, gpu)`` devices), the usual
    ``packet_bytes``/``iterations``, and optional ``comm_backend``.

    Returns:
        A :class:`~repro.bench.pingpong.PingPongResult`.
    """
    from ..bench.pingpong import run_pingpong_pair
    from ..hw.config import greina
    from ..platform import fat_tree, flat, ring

    kind = params.get("kind", "flat")
    num_nodes = params.get("num_nodes", 4)
    gpus = params.get("gpus_per_node", 1)
    if kind == "flat":
        topo = flat(num_nodes=num_nodes, gpus_per_node=gpus)
    elif kind == "fat_tree":
        topo = fat_tree(num_nodes=num_nodes, gpus_per_node=gpus,
                        oversubscription=params.get("oversubscription", 2.0))
    elif kind == "ring":
        topo = ring(num_nodes, gpus_per_node=gpus)
    else:
        from ..errors import DCudaUsageError

        raise DCudaUsageError(f"unknown interconnect kind {kind!r}")
    cfg = greina(topology=topo,
                 comm_backend=params.get("comm_backend", "proxy"))
    return run_pingpong_pair(cfg,
                             a=tuple(params.get("a", (0, 0))),
                             b=tuple(params.get("b", (1, 0))),
                             packet_bytes=params.get("packet_bytes", 1024),
                             iterations=params.get("iterations", 30))


@entrypoint("overlap_point")
def overlap_point(params: Mapping[str, Any], shared: Mapping[str, Any]):
    """One Fig. 7/8 overlap-benchmark configuration.

    Params mirror :func:`~repro.bench.overlap.run_overlap`: ``mode``,
    ``compute_iters``, ``do_compute``, ``do_exchange``, ``steps``,
    ``num_nodes``, ``ranks_per_device``, ``halo_bytes``, optional
    ``cfg``.

    Returns:
        An :class:`~repro.bench.overlap.OverlapPoint`.
    """
    from ..bench.overlap import run_overlap

    return run_overlap(params["mode"], params["compute_iters"],
                       params.get("do_compute", True),
                       params.get("do_exchange", True),
                       params.get("steps", 20),
                       params.get("num_nodes", 8),
                       params.get("ranks_per_device", 52),
                       params.get("halo_bytes", 1024),
                       cfg=params.get("cfg"))


@entrypoint("weak_scaling_point")
def weak_scaling_point(params: Mapping[str, Any],
                       shared: Mapping[str, Any]):
    """One node count of a Fig. 9/10/11 weak-scaling sweep.

    Params: ``app`` (``"particles"`` | ``"stencil"`` | ``"spmv"``),
    ``nodes``, optional ``wl``, ``ranks_per_device``, ``nblocks``,
    ``verify``.

    Returns:
        A :class:`~repro.bench.weak_scaling.ScalingRow`.
    """
    from ..bench.weak_scaling import scaling_point

    return scaling_point(params["app"], params["nodes"],
                         wl=params.get("wl"),
                         ranks_per_device=params.get("ranks_per_device"),
                         nblocks=params.get("nblocks"),
                         verify=params.get("verify", True))


def _ml_cluster(params: Mapping[str, Any]):
    """Build the ML-suite machine a worker process can reconstruct.

    ``kind`` picks the shape: ``"flat"`` is ``num_nodes * gpus_per_node``
    single-GPU nodes on the shared fabric (no intra-node tier, the ring
    algorithm's home turf); ``"fat_tree"`` is ``num_nodes`` dense nodes
    with ``gpus_per_node`` GPUs behind NVLink-class intra links and a
    2:1-oversubscribed spine (the hierarchical algorithm's home turf).
    Both shapes expose the same total rank count so results compare
    like-for-like across topologies.
    """
    from ..hw import Cluster, greina
    from ..platform import fat_tree, flat
    from ..platform.topology import LinkSpec

    kind = params.get("kind", "flat")
    num_nodes = params.get("num_nodes", 4)
    gpus = params.get("gpus_per_node", 2)
    if kind == "flat":
        topo = flat(num_nodes=num_nodes * gpus, gpus_per_node=1)
    elif kind == "fat_tree":
        topo = fat_tree(num_nodes=num_nodes, gpus_per_node=gpus,
                        intra_link=LinkSpec(bandwidth=50e9,
                                            latency=0.25e-6))
    else:
        from ..errors import DCudaUsageError

        raise DCudaUsageError(f"unknown ml-suite topology kind {kind!r}")
    return Cluster(greina(topology=topo,
                          comm_backend=params.get("comm_backend",
                                                  "proxy")))


@entrypoint("collective_point")
def collective_point(params: Mapping[str, Any], shared: Mapping[str, Any]):
    """One timed collective on one (backend, topology, algorithm) cell.

    Params: ``op`` (``"allreduce"`` | ``"reduce_scatter"`` |
    ``"all_gather"``), ``algorithm`` (family name or ``"auto"``),
    ``elems`` (message length in float64 elements), plus the
    :func:`_ml_cluster` shape params (``kind``, ``num_nodes``,
    ``gpus_per_node``, ``comm_backend``).  Payloads are integer-valued
    so the reduction is exact; the result is verified in-process against
    the serial answer.

    Returns:
        ``{"elapsed": median per-rank seconds, "algorithm": name run,
        "ok": bool}``.
    """
    import numpy as np

    from ..dcuda import launch
    from ..dcuda.collectives import (all_gather, allreduce, chunk_bounds,
                                     reduce_scatter, scratch_elems)

    op = params.get("op", "allreduce")
    algorithm = params.get("algorithm", "ring")
    elems = params.get("elems", 4096)
    cluster = _ml_cluster(params)
    total = cluster.platform.place(1).total_ranks
    base = np.arange(elems, dtype=float)
    summed = total * base + total * (total - 1) / 2.0
    gathered = np.concatenate([
        base[lo:hi] + r
        for r, (lo, hi) in ((r, chunk_bounds(elems, total, r))
                            for r in range(total))])
    times: dict = {}
    checks: dict = {}

    def kernel(rank):
        p = rank.comm_size()
        r = rank.world_rank
        group = list(range(p))
        if op == "all_gather":
            buf = np.zeros(elems)
            lo, hi = chunk_bounds(elems, p, r)
            buf[lo:hi] = base[lo:hi] + r
        else:
            buf = base + r
        win = yield from rank.win_create(buf)
        swin = yield from rank.win_create(
            np.zeros(scratch_elems(p, elems)))
        yield from rank.barrier()
        t0 = rank.now
        if op == "allreduce":
            yield from allreduce(rank, win, swin, group, buf,
                                 algorithm=algorithm)
            ok = np.array_equal(buf, summed)
        elif op == "reduce_scatter":
            lo, hi = yield from reduce_scatter(rank, win, swin, group,
                                               buf, algorithm=algorithm)
            ok = np.array_equal(buf[lo:hi], summed[lo:hi])
        elif op == "all_gather":
            yield from all_gather(rank, win, swin, group, buf,
                                  algorithm=algorithm)
            ok = np.array_equal(buf, gathered)
        else:
            from ..errors import DCudaUsageError

            raise DCudaUsageError(f"unknown collective op {op!r}")
        times[r] = rank.now - t0
        checks[r] = ok
        yield from rank.flush()
        yield from rank.barrier()
        yield from rank.finish()

    launch(cluster, kernel, ranks_per_device=1)
    ordered = sorted(times.values())
    return {"elapsed": ordered[len(ordered) // 2],
            "algorithm": algorithm, "ok": all(checks.values())}


@entrypoint("gemm_point")
def gemm_point(params: Mapping[str, Any], shared: Mapping[str, Any]):
    """One pipelined-GEMM run (one mode of the overlap decomposition).

    Params: ``mode`` (``"both"`` | ``"compute"`` | ``"stream"``),
    ``algorithm`` (final-gather family, ``both`` mode only), the
    :class:`~repro.apps.gemm_stream.GemmWorkload` fields (``m``, ``k``,
    ``batch``, ``tiles``, ``slots``), and the :func:`_ml_cluster` shape
    params.  ``m`` must divide over ``total_ranks - 1`` workers.

    Returns:
        ``{"elapsed": median worker pipeline seconds, "gather": max
        worker gather seconds, "ok": bit-identity vs the reference
        (trivially True outside ``both`` mode)}``.
    """
    import numpy as np

    from ..apps.gemm_stream import (GemmWorkload, gemm_reference,
                                    run_gemm_pipeline)

    wl = GemmWorkload(m=params.get("m", 28), k=params.get("k", 12),
                      batch=params.get("batch", 8),
                      tiles=params.get("tiles", 4),
                      slots=params.get("slots", 2))
    mode = params.get("mode", "both")
    cluster = _ml_cluster(params)
    elapsed, y, stats = run_gemm_pipeline(
        cluster, wl, mode=mode, algorithm=params.get("algorithm", "ring"))
    ok = True
    if mode == "both":
        workers = cluster.platform.place(1).total_ranks - 1
        ok = bool(np.array_equal(y, gemm_reference(wl, workers)))
    gather = max(s["gather"] for s in stats.values())
    return {"elapsed": elapsed, "gather": gather, "ok": ok}


@entrypoint("train_point")
def train_point(params: Mapping[str, Any], shared: Mapping[str, Any]):
    """One data-parallel SGD run with an (optionally autotuned) allreduce.

    Params: ``features``, ``steps``, ``samples_per_rank``, ``algorithm``
    (family name or ``"auto"``), ``override`` (autotuner pin when
    ``auto``), and the :func:`_ml_cluster` shape params.  The final
    weights are verified against the serial reference in-process.

    Returns:
        ``{"elapsed": median per-rank loop seconds, "algorithm": family
        that ran, "predicted": the autotuner's modelled seconds for it
        (None when pinned per call), "ok": allclose vs reference}``.
    """
    import numpy as np

    from ..apps.train_step import (TrainWorkload, run_train_step,
                                   train_reference)

    wl = TrainWorkload(features=params.get("features", 64),
                       samples_per_rank=params.get("samples_per_rank", 6),
                       steps=params.get("steps", 2))
    cluster = _ml_cluster(params)
    ranks = cluster.platform.place(1).total_ranks
    elapsed, weights, info = run_train_step(
        cluster, wl, algorithm=params.get("algorithm", "auto"),
        override=params.get("override"))
    choice = info["choice"]
    predicted = (choice.costs[choice.algorithm]
                 if choice is not None else None)
    ok = bool(np.allclose(weights, train_reference(wl, ranks)))
    return {"elapsed": elapsed, "algorithm": info["algorithm"],
            "predicted": predicted, "ok": ok}


@entrypoint("queue_burst_point")
def queue_burst_point(params: Mapping[str, Any],
                      shared: Mapping[str, Any]):
    """Queue-sizing ablation cell: a put burst at one queue size.

    Rank 0 fires ``burst`` back-to-back puts at a circular queue of
    ``queue_size`` entries and flushes; the credit-reload and full-stall
    counters quantify the flow-control amortization of §III-C.

    Params: ``queue_size``, ``burst``.

    Returns:
        ``{"time": seconds, "reloads": int, "stalls": int}``.
    """
    import dataclasses

    import numpy as np

    from ..dcuda import launch
    from ..hw import Cluster, greina

    qsize = params["queue_size"]
    burst = params.get("burst", 192)
    cfg = greina(1)
    cfg = dataclasses.replace(
        cfg, devicelib=dataclasses.replace(cfg.devicelib,
                                           queue_size=qsize))
    cluster = Cluster(cfg)
    buffers = {r: np.zeros(8, dtype=np.uint8) for r in range(2)}
    out: dict = {}

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(buffers[r])
        yield from rank.barrier()
        if r == 0:
            t0 = rank.now
            for _ in range(burst):
                yield from rank.put_notify(win, 1, 0, buffers[0][:8],
                                           tag=1, notify=False)
            yield from rank.flush(win)
            out["time"] = rank.now - t0
            q = rank.state.cmd_queue
            out["reloads"] = q.stats.credit_reloads
            out["stalls"] = q.stats.full_stalls
        yield from rank.barrier()
        yield from rank.finish()

    launch(cluster, kernel, ranks_per_device=2)
    return {"time": out["time"], "reloads": out["reloads"],
            "stalls": out["stalls"]}


@entrypoint("staging_point")
def staging_point(params: Mapping[str, Any], shared: Mapping[str, Any]):
    """Host-staging ablation cell: one device-buffer send, timed.

    Params: ``nbytes`` (message size) and ``staging_threshold`` (bytes
    above which the MPI substrate stages through host memory).

    Returns:
        One-way delivery time in seconds (float).
    """
    import dataclasses

    from ..hw import Cluster, greina
    from ..mpi import MPIWorld

    nbytes = params["nbytes"]
    cfg = greina(2)
    cfg = dataclasses.replace(
        cfg, fabric=dataclasses.replace(
            cfg.fabric, staging_threshold=params["staging_threshold"]))
    cluster = Cluster(cfg)
    world = MPIWorld(cluster)
    out: dict = {}

    def sender(env):
        yield from world.send(0, 1, None, nbytes=nbytes, device=True)

    def receiver(env):
        t0 = env.now
        yield from world.recv(1)
        out["dt"] = env.now - t0

    cluster.env.process(sender(cluster.env))
    cluster.env.process(receiver(cluster.env))
    cluster.run()
    return out["dt"]


@entrypoint("simperf_probe")
def simperf_probe(params: Mapping[str, Any], shared: Mapping[str, Any]):
    """One simulator-throughput probe (wall-clock; never cacheable).

    Params: ``probe`` = ``"synthetic"`` (``num_procs``, ``hops``) or
    ``"diffusion"`` (optional ``wl``, ``num_nodes``,
    ``ranks_per_device``, ``comm_backend``); both accept ``repeats``
    (best-of-N steady-state measurement, default 1).  Specs built from this
    entrypoint must set ``cacheable=False`` — replaying a cached
    wall-clock measurement would report the disk's speed, not the
    simulator's.

    Returns:
        A :class:`~repro.bench.simperf.SimPerfResult`.
    """
    from ..bench.simperf import (
        best_of,
        diffusion_throughput,
        synthetic_throughput,
    )

    repeats = params.get("repeats", 1)
    if params["probe"] == "synthetic":
        return best_of(
            lambda: synthetic_throughput(num_procs=params.get("num_procs", 64),
                                         hops=params.get("hops", 500)),
            repeats)
    if params["probe"] == "diffusion":
        return best_of(
            lambda: diffusion_throughput(
                wl=params.get("wl"),
                num_nodes=params.get("num_nodes", 2),
                ranks_per_device=params.get("ranks_per_device", 16),
                comm_backend=params.get("comm_backend", "proxy")),
            repeats)
    from ..errors import DCudaUsageError

    raise DCudaUsageError(f"unknown simperf probe {params['probe']!r}")


@entrypoint("sleep_probe")
def sleep_probe(params: Mapping[str, Any], shared: Mapping[str, Any]):
    """Engine-test probe: sleep ``seconds`` of host time, return it.

    Exists so the timeout path (worker termination + typed
    :class:`~repro.errors.DCudaTimeoutError`) is testable without a real
    stuck simulation.
    """
    import time

    time.sleep(params.get("seconds", 0.0))
    return params.get("seconds", 0.0)


@entrypoint("crash_probe")
def crash_probe(params: Mapping[str, Any], shared: Mapping[str, Any]):
    """Engine-test probe: raise an untyped exception on demand.

    Exercises crash isolation — the engine must wrap this in
    :class:`~repro.errors.DCudaWorkerError` instead of leaking a bare
    ``RuntimeError`` (or taking down the sweep).
    """
    raise RuntimeError(params.get("message", "crash_probe"))


@entrypoint("selftest_point")
def selftest_point(params: Mapping[str, Any], shared: Mapping[str, Any]):
    """Sweep-service test probe: echo, sleep, raise, or kill the worker.

    ``mode`` selects the behaviour:

    * ``echo`` (default) — return a deterministic record of ``(params,
      shared keys)``; the chaos fuzz harness digests these.
    * ``sleep`` — sleep ``seconds`` of host time, then echo.
    * ``raise`` — raise an untyped ``RuntimeError(message)``.
    * ``exit`` — hard-kill the hosting process with ``os._exit(code)``
      (the poisoned-spec case: the transport sees EOF / a broken pool,
      never an exception).

    Lives in the registry — rather than in test code — because spawned
    workers resolve entrypoints by importing this module; a test-local
    function would not exist in their interpreter.
    """
    import os
    import time

    mode = params.get("mode", "echo")
    if mode == "sleep":
        time.sleep(params.get("seconds", 0.0))
    elif mode == "raise":
        raise RuntimeError(params.get("message", "selftest_point"))
    elif mode == "exit":
        os._exit(int(params.get("code", 17)))
    return {"token": params.get("token"),
            "payload": sorted(shared) if shared else [],
            "mode": mode}
