"""The sweep worker daemon: ``python -m repro.exec worker``.

One process, one job at a time, two transports over the same tiny frame
protocol:

* ``--stdio`` — serve a parent :class:`~repro.exec.executors.
  SubprocessWorkerExecutor` over stdin/stdout pipes.  Frames are
  length-prefixed pickles: a 4-byte big-endian payload length followed
  by the pickled dict.  Parent → worker kinds: ``init`` (shared payload,
  sent once), ``job`` (one task), ``shutdown``.  Worker → parent kinds:
  ``ready`` (init acknowledged / job finished, free for work) and
  ``done`` (one task outcome).
* ``--port N`` — serve :class:`~repro.exec.executors.HTTPWorkerExecutor`
  coordinators over stdlib HTTP: ``POST /init`` installs the shared
  payload, ``POST /submit`` enqueues one job, ``GET /poll?wait=S``
  long-polls for finished completions, ``GET /healthz`` answers
  liveness, ``GET /stats`` reports jobs served.  Payloads are pickled
  dicts — the trust model is "machines that already run your code"
  (like SSH), never the open internet.

Task outcomes always cross the wire typed: a task raising a
:class:`~repro.errors.DCudaError` ships it as-is, any other exception is
wrapped in :class:`~repro.errors.DCudaWorkerError` with the original
traceback text, and an unpicklable result becomes a
:class:`~repro.errors.DCudaWorkerError` instead of a protocol break.  A
worker that dies outright (the poisoned-spec case) is detected by the
transport — pipe EOF or a refused connection — and handled by the
coordinator's retry/quarantine logic, not here.
"""

from __future__ import annotations

import pickle
import struct
import sys
import threading
import traceback
from typing import Any, BinaryIO, Dict, List, Mapping, Optional

from ..errors import DCudaError, DCudaWorkerError
from .spec import resolve_entrypoint

__all__ = ["send_frame", "recv_frame", "serve_stdio", "serve_http",
           "run_job_payload"]

#: Frame header: 4-byte big-endian payload length.
_HEADER = struct.Struct(">I")
#: Upper bound on a single frame (guards against a corrupted header
#: making the reader allocate gigabytes).
MAX_FRAME_BYTES = 1 << 30


def send_frame(pipe: BinaryIO, obj: Mapping[str, Any]) -> None:
    """Write one length-prefixed pickled frame and flush.

    Raises:
        OSError: The pipe is closed (the peer died).
    """
    blob = pickle.dumps(dict(obj), protocol=pickle.HIGHEST_PROTOCOL)
    pipe.write(_HEADER.pack(len(blob)) + blob)
    pipe.flush()


def recv_frame(pipe: BinaryIO) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on clean EOF.

    Raises:
        EOFError: The stream ended mid-frame (the peer died while
            writing) or the header announces an impossible length.
    """
    header = pipe.read(_HEADER.size)
    if not header:
        return None
    if len(header) < _HEADER.size:
        raise EOFError("truncated frame header")
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise EOFError(f"frame length {length} exceeds protocol maximum")
    blob = b""
    while len(blob) < length:
        chunk = pipe.read(length - len(blob))
        if not chunk:
            raise EOFError("truncated frame payload")
        blob += chunk
    return pickle.loads(blob)


def run_job_payload(job: Mapping[str, Any],
                    shared: Mapping[str, Any]) -> Dict[str, Any]:
    """Execute one ``job`` frame; return the matching ``done`` frame.

    The outcome is guaranteed picklable: typed errors pass through,
    untyped exceptions are wrapped with their traceback text, and a
    result pickle cannot serialize is converted to a typed error rather
    than killing the connection.
    """
    label = job.get("label", "")
    try:
        fn = resolve_entrypoint(job["entrypoint"])
        value = fn(dict(job.get("params") or {}), shared)
    except DCudaError as exc:
        return {"kind": "done", "job_id": job["job_id"], "ok": False,
                "error": exc}
    except Exception:
        return {"kind": "done", "job_id": job["job_id"], "ok": False,
                "error": DCudaWorkerError(
                    f"task {label!r} ({job.get('entrypoint')}) failed:\n"
                    + traceback.format_exc())}
    try:
        pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        return {"kind": "done", "job_id": job["job_id"], "ok": False,
                "error": DCudaWorkerError(
                    f"task {label!r} returned an unpicklable result: "
                    f"{exc!r}")}
    return {"kind": "done", "job_id": job["job_id"], "ok": True,
            "value": value}


def serve_stdio() -> int:
    """Run the stdio worker loop until ``shutdown`` or parent EOF.

    Returns:
        Process exit status (0 on clean shutdown).
    """
    stdin = sys.stdin.buffer
    stdout = sys.stdout.buffer
    shared: Dict[str, Any] = {}
    while True:
        try:
            frame = recv_frame(stdin)
        except EOFError:
            return 1
        if frame is None or frame.get("kind") == "shutdown":
            return 0
        if frame.get("kind") == "init":
            shared = pickle.loads(frame["shared"])
            from . import points  # noqa: F401  (populate the registry)

            send_frame(stdout, {"kind": "ready"})
        elif frame.get("kind") == "job":
            send_frame(stdout, run_job_payload(frame, shared))
            send_frame(stdout, {"kind": "ready"})


class _HttpWorkerState:
    """Shared state of one HTTP worker daemon: queue, runner, results."""

    def __init__(self):
        self.shared: Dict[str, Any] = {}
        self.jobs: List[Dict[str, Any]] = []
        self.finished: List[Dict[str, Any]] = []
        self.served = 0
        self.cond = threading.Condition()
        self.stopping = False

    def reset(self, shared: Dict[str, Any]) -> None:
        """Start a new session: install *shared*, drop stale work.

        A daemon outlives the sweeps it serves.  Any queued job or
        unpolled result at init time belongs to a dead session — a
        coordinator that gave up on this host, or a finished sweep —
        and job ids are only unique *within* a sweep, so serving a
        stale frame to the next sweep would record a foreign result
        under a colliding id.  Dropping them here (plus the epoch tag
        echoed on every done frame) makes reuse safe.
        """
        with self.cond:
            self.shared = shared
            self.jobs.clear()
            self.finished.clear()
            self.cond.notify_all()

    def runner(self):
        while True:
            with self.cond:
                while not self.jobs and not self.stopping:
                    self.cond.wait(timeout=0.5)
                if self.stopping:
                    return
                job = self.jobs.pop(0)
            done = run_job_payload(job, self.shared)
            # Echo the submitter's epoch so clients can tell this
            # sweep's frames from a dead session's stragglers.
            done["epoch"] = job.get("epoch")
            with self.cond:
                self.finished.append(done)
                self.served += 1
                self.cond.notify_all()

    def drain(self, wait: float) -> List[Dict[str, Any]]:
        with self.cond:
            if not self.finished and wait > 0:
                self.cond.wait(timeout=wait)
            out, self.finished = self.finished, []
            return out


def serve_http(port: int, host: str = "127.0.0.1",
               ready_event: Optional[threading.Event] = None,
               serve_forever: bool = True):
    """Start the HTTP worker daemon (see the module docstring for routes).

    Args:
        port: TCP port to bind (0 picks a free one).
        host: Bind address; the localhost default means exposing a
            worker to other machines is an explicit decision.
        ready_event: Set once the socket is bound (tests use this to
            avoid races instead of sleeping).
        serve_forever: When ``False``, returns the bound
            ``ThreadingHTTPServer`` immediately instead of blocking —
            the caller drives ``serve_forever``/``shutdown`` (tests run
            the daemon in a thread of the same process).

    Returns:
        The server object when ``serve_forever=False``; otherwise only
        on shutdown.
    """
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    state = _HttpWorkerState()
    from . import points  # noqa: F401  (populate the registry up front)

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, fmt, *args):  # quiet: workers are daemons
            pass

        def _reply(self, blob: bytes = b"ok", status: int = 200):
            self.send_response(status)
            self.send_header("Content-Type", "application/octet-stream")
            self.send_header("Content-Length", str(len(blob)))
            self.end_headers()
            self.wfile.write(blob)

        def _body(self) -> bytes:
            length = int(self.headers.get("Content-Length") or 0)
            return self.rfile.read(length) if length else b""

        def do_GET(self):
            if self.path.startswith("/healthz"):
                self._reply(b"ok")
            elif self.path.startswith("/stats"):
                with state.cond:
                    blob = pickle.dumps({"served": state.served,
                                         "queued": len(state.jobs)})
                self._reply(blob)
            elif self.path.startswith("/poll"):
                wait = 0.0
                if "wait=" in self.path:
                    try:
                        wait = float(self.path.split("wait=")[1]
                                     .split("&")[0])
                    except ValueError:
                        wait = 0.0
                self._reply(pickle.dumps(state.drain(min(wait, 30.0)),
                                         protocol=pickle.HIGHEST_PROTOCOL))
            else:
                self._reply(b"not found", status=404)

        def do_POST(self):
            body = self._body()
            if self.path.startswith("/init"):
                state.reset(pickle.loads(body) if body else {})
                self._reply(b"ok")
            elif self.path.startswith("/submit"):
                job = pickle.loads(body)
                with state.cond:
                    state.jobs.append(job)
                    state.cond.notify_all()
                self._reply(b"queued")
            else:
                self._reply(b"not found", status=404)

    server = ThreadingHTTPServer((host, port), Handler)
    server.worker_state = state
    runner = threading.Thread(target=state.runner, daemon=True)
    runner.start()
    if ready_event is not None:
        ready_event.set()
    if not serve_forever:
        return server
    try:
        server.serve_forever()
    finally:
        with state.cond:
            state.stopping = True
            state.cond.notify_all()
        server.server_close()
    return server
