"""Deterministic parallel sweep execution with content-addressed caching.

The paper's evaluation is a fleet of *independent* simulations — figure
points, ablation cells, chaos seeds, throughput probes.  This package
turns each of them into a picklable :class:`~repro.exec.spec.RunSpec`,
executes whole sweeps serially or on a spawn process pool with results
**bit-identical to serial execution**
(:func:`~repro.exec.engine.run_specs`), and memoizes results on disk
keyed by content hash + source-tree fingerprint
(:class:`~repro.exec.cache.ResultCache`), so unchanged sweeps replay
near-instantly and interrupted sweeps resume.

Command line::

    python -m repro.exec run chaos --seeds 50 --workers 4
    python -m repro.exec run fig6 --workers 2
    python -m repro.exec status
    python -m repro.exec cache gc

See ``docs/performance.md`` for the architecture, the cache-key design,
and the determinism argument.
"""

from .cache import DEFAULT_CACHE_DIR, CacheStats, ResultCache
from .engine import SweepReport, default_workers, run_specs
from .fingerprint import source_fingerprint
from .spec import (
    RunSpec,
    canonical_digest,
    entrypoint,
    registered_entrypoints,
    resolve_entrypoint,
)

__all__ = [
    "RunSpec",
    "canonical_digest",
    "entrypoint",
    "resolve_entrypoint",
    "registered_entrypoints",
    "run_specs",
    "SweepReport",
    "default_workers",
    "ResultCache",
    "CacheStats",
    "DEFAULT_CACHE_DIR",
    "source_fingerprint",
]
