"""The sweep service: pluggable executors, sharded cache, coordinator.

The paper's evaluation is a fleet of *independent* simulations — figure
points, ablation cells, chaos seeds, throughput probes.  This package
turns each of them into a picklable :class:`~repro.exec.spec.RunSpec`
and executes whole sweeps through three cooperating layers:

* **Executors** (:mod:`repro.exec.executors`) — *where* tasks run:
  in-process serial, a spawn process pool, long-lived subprocess
  workers over pipes, or HTTP worker daemons on other machines — one
  protocol, so every transport is interchangeable.
* **Store** (:mod:`repro.exec.cache`) — results memoized on disk keyed
  by content hash + source-tree fingerprint, sharded by key prefix so
  the directory scales to million-point campaigns (with transparent
  migration of pre-sharding caches).
* **Coordinator** (:mod:`repro.exec.coordinator`) — *what* runs when:
  the spec queue, cache probes, in-flight dedup, retry on worker loss,
  poisoned-spec quarantine, and streamed progress.

Results are merged by submission index, so every sweep is
**bit-identical to serial execution** for any executor, worker count,
shard count, and any sequence of worker deaths
(:func:`~repro.exec.engine.run_specs` is the one-call surface).

Command line::

    python -m repro.exec run chaos --seeds 50 --workers 4
    python -m repro.exec run fig6 --executor http --hosts 127.0.0.1:8791
    python -m repro.exec worker --port 8791
    python -m repro.exec status
    python -m repro.exec cache stats --shard
    python -m repro.exec cache gc

See ``docs/sweep_service.md`` for the architecture and
``docs/performance.md`` for the determinism argument.
"""

from .cache import DEFAULT_CACHE_DIR, CacheStats, ResultCache
from .coordinator import Coordinator, ProgressEvent
from .engine import SweepReport, default_workers, run_specs
from .executors import (
    EXECUTOR_NAMES,
    Executor,
    HTTPWorkerExecutor,
    LocalPoolExecutor,
    SerialExecutor,
    SubprocessWorkerExecutor,
    build_executor,
)
from .fingerprint import source_fingerprint
from .spec import (
    RunSpec,
    canonical_digest,
    entrypoint,
    registered_entrypoints,
    resolve_entrypoint,
)

__all__ = [
    "RunSpec",
    "canonical_digest",
    "entrypoint",
    "resolve_entrypoint",
    "registered_entrypoints",
    "run_specs",
    "SweepReport",
    "default_workers",
    "Coordinator",
    "ProgressEvent",
    "Executor",
    "SerialExecutor",
    "LocalPoolExecutor",
    "SubprocessWorkerExecutor",
    "HTTPWorkerExecutor",
    "build_executor",
    "EXECUTOR_NAMES",
    "ResultCache",
    "CacheStats",
    "DEFAULT_CACHE_DIR",
    "source_fingerprint",
]
