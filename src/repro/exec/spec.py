"""The sweep task model: picklable :class:`RunSpec` + entrypoint registry.

A *run spec* describes one independent simulation — a figure point, an
ablation cell, a chaos seed, a throughput probe — as pure data: the name
of a registered entrypoint function plus a mapping of picklable
parameters.  Because the spec is data, the execution engine
(:mod:`repro.exec.engine`) can ship it to a worker process spawned with a
fresh interpreter, and because it has a *stable content hash*
(:meth:`RunSpec.content_hash`), the result cache
(:mod:`repro.exec.cache`) can address results by what was asked for
rather than when it ran.

The content hash is computed over a canonical byte serialization
(:func:`canonical_digest`) that covers the value types sweeps actually
use — primitives, tuples/lists, string-keyed dicts, (nested, frozen)
dataclasses such as :class:`~repro.hw.config.MachineConfig`, and numpy
arrays — and deliberately rejects everything else: an unhashable
parameter would silently break cache addressing, so it raises
:class:`~repro.errors.DCudaUsageError` instead.

Entrypoints are plain functions ``fn(params, shared) -> result``
registered by name via :func:`entrypoint`; the registry is populated by
importing :mod:`repro.exec.points` (done lazily by
:func:`resolve_entrypoint`, and by every worker during pool
initialization), so a spec resolves identically in the parent and in a
spawned worker.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping

import numpy as np

from ..errors import DCudaUsageError

__all__ = [
    "RunSpec",
    "canonical_digest",
    "entrypoint",
    "resolve_entrypoint",
    "registered_entrypoints",
]

#: Version tag mixed into every hash so a change to the canonical
#: serialization itself invalidates all previously cached results.
_HASH_VERSION = b"runspec-v1"


def _feed(h, obj: Any) -> None:
    """Feed *obj* into hash *h* as an unambiguous, type-tagged token stream.

    Every token is tagged and length-prefixed, so distinct values can
    never collide by concatenation (``("ab", "c")`` vs ``("a", "bc")``).

    Raises:
        DCudaUsageError: If *obj* (or anything nested in it) is not a
            supported spec-parameter type.
    """
    if obj is None:
        h.update(b"N")
    elif isinstance(obj, bool):            # before int: bool is an int
        h.update(b"B1" if obj else b"B0")
    elif isinstance(obj, int):
        t = str(obj).encode()
        h.update(b"I%d:" % len(t) + t)
    elif isinstance(obj, float):
        t = repr(obj).encode()             # repr round-trips IEEE doubles
        h.update(b"F%d:" % len(t) + t)
    elif isinstance(obj, str):
        t = obj.encode()
        h.update(b"S%d:" % len(t) + t)
    elif isinstance(obj, bytes):
        h.update(b"Y%d:" % len(obj) + obj)
    elif isinstance(obj, (tuple, list)):
        h.update(b"T%d:" % len(obj))
        for item in obj:
            _feed(h, item)
    elif isinstance(obj, Mapping):
        keys = list(obj)
        if not all(isinstance(k, str) for k in keys):
            raise DCudaUsageError(
                "spec parameter dicts must have string keys, got "
                f"{sorted(type(k).__name__ for k in keys)}")
        h.update(b"D%d:" % len(keys))
        for k in sorted(keys):             # insertion order never matters
            _feed(h, k)
            _feed(h, obj[k])
    elif isinstance(obj, np.ndarray):
        data = np.ascontiguousarray(obj)
        h.update(b"A")
        _feed(h, data.dtype.str)
        _feed(h, list(data.shape))
        h.update(hashlib.sha256(data.tobytes()).digest())
    elif isinstance(obj, np.generic):
        h.update(b"G")
        _feed(h, obj.dtype.str)
        h.update(obj.tobytes())
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        h.update(b"C")
        _feed(h, f"{cls.__module__}.{cls.__qualname__}")
        _feed(h, {f.name: getattr(obj, f.name)
                  for f in dataclasses.fields(obj)})
    else:
        raise DCudaUsageError(
            f"unhashable spec parameter of type {type(obj).__name__!r}: "
            f"{obj!r}; supported types are primitives, tuples/lists, "
            "str-keyed dicts, dataclasses, and numpy arrays")


def canonical_digest(obj: Any) -> str:
    """Deterministic sha256 hex digest of a supported parameter value.

    The digest is stable across processes, interpreter restarts, and dict
    insertion orders — the property the result cache's content addressing
    rests on.

    Raises:
        DCudaUsageError: For unsupported value types (see :func:`_feed`).
    """
    h = hashlib.sha256()
    h.update(_HASH_VERSION)
    _feed(h, obj)
    return h.hexdigest()


@dataclass(frozen=True, eq=False)
class RunSpec:
    """One independent simulation run, as pure picklable data.

    Args:
        entrypoint: Name of a function registered via :func:`entrypoint`
            (the registry lives in :mod:`repro.exec.points`).
        params: Picklable, canonically-hashable keyword parameters passed
            to the entrypoint.  Large payloads shared by *every* spec of
            a sweep (e.g. the chaos baseline field) belong in the
            engine's ``shared`` mapping instead, so they are shipped to
            each worker once rather than once per task.
        label: Display name for progress/error messages; not hashed.
        cacheable: Whether the result may be served from / stored into
            the on-disk cache.  Wall-clock measurements (the simperf
            probes) set this to ``False``: replaying a cached wall time
            would be a lie.
    """

    entrypoint: str
    params: Mapping[str, Any] = field(default_factory=dict)
    label: str = ""
    cacheable: bool = True

    def content_hash(self) -> str:
        """Stable content hash of ``(entrypoint, params)``.

        ``label`` and ``cacheable`` are presentation/policy, not content,
        and are deliberately excluded.
        """
        return canonical_digest((self.entrypoint, dict(self.params)))

    def describe(self) -> str:
        """Human-readable identity for logs and error messages."""
        return self.label or f"{self.entrypoint}[{self.content_hash()[:10]}]"


# ------------------------------------------------------------ registry -----
_ENTRYPOINTS: Dict[str, Callable[[Mapping[str, Any], Mapping[str, Any]],
                                 Any]] = {}


def entrypoint(name: str):
    """Decorator factory: register ``fn(params, shared)`` under *name*.

    Raises:
        DCudaUsageError: If *name* is already registered (a silent
            overwrite would make spec hashes ambiguous).
    """

    def _register(fn):
        if name in _ENTRYPOINTS and _ENTRYPOINTS[name] is not fn:
            raise DCudaUsageError(
                f"entrypoint {name!r} is already registered")
        _ENTRYPOINTS[name] = fn
        return fn

    return _register


def resolve_entrypoint(name: str):
    """Look up a registered entrypoint, importing the registry if needed.

    Returns:
        The registered ``fn(params, shared)`` callable.

    Raises:
        DCudaUsageError: If no entrypoint of that name exists.
    """
    if name not in _ENTRYPOINTS:
        from . import points  # noqa: F401  (import populates the registry)
    try:
        return _ENTRYPOINTS[name]
    except KeyError:
        known = ", ".join(sorted(_ENTRYPOINTS)) or "<none>"
        raise DCudaUsageError(
            f"unknown entrypoint {name!r}; registered: {known}") from None


def registered_entrypoints() -> Dict[str, Callable]:
    """Snapshot of the registry (importing it first), name → callable."""
    from . import points  # noqa: F401
    return dict(_ENTRYPOINTS)
