"""The sweep coordinator: queue, dedup, retry, quarantine, progress.

Sits between spec lists and :mod:`repro.exec.executors`: the
coordinator owns every policy decision the executor protocol
deliberately excludes —

* **Merging**: results are placed by *submission index*, so the merged
  list (and its :func:`~repro.exec.spec.canonical_digest`) is a pure
  function of the spec list alone — bit-identical for any executor,
  worker count, shard count, and any sequence of worker deaths.  An
  executor only decides *when* a completion arrives, never *what* it
  contains, and a retried task re-runs the same pure function.
* **Caching**: one probe and one publish per unique task key against
  the sharded :class:`~repro.exec.cache.ResultCache`.
* **In-flight dedup**: identical cacheable specs submitted concurrently
  execute once; every duplicate index receives the same result and is
  counted as a ``dedup_hit``.  Non-cacheable specs (wall-clock probes)
  are never deduplicated — collapsing two measurements into one would
  be the same lie as caching them.
* **Retry on worker loss**: a task whose worker died is re-dispatched —
  the job, not the worker, is the unit of recovery — up to
  *max_attempts* times.  A spec that kills *distinct* workers on every
  attempt is **quarantined**: it stops being dispatched, the rest of
  the sweep completes, and the coordinator raises a single typed
  :class:`~repro.errors.DCudaWorkerError` naming the spec and the
  workers it took down.  Typed task errors (including untyped
  exceptions wrapped by the worker) are deterministic and propagate
  immediately — re-running a failing function would fail again.
* **Progress streaming**: every state change emits a
  :class:`ProgressEvent` to the ``on_event`` callback and (when a cache
  is attached) to ``<cache-root>/status.json``, which ``python -m
  repro.exec status`` renders as a live progress line.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from ..errors import DCudaTimeoutError, DCudaWorkerError
from .cache import ResultCache
from .executors import Executor, Job, SerialExecutor
from .spec import RunSpec, canonical_digest

__all__ = ["Coordinator", "ProgressEvent", "SweepReport",
           "STATUS_FILENAME"]

#: Live progress file written into the cache root while a sweep runs.
STATUS_FILENAME = "status.json"


@dataclass
class SweepReport:
    """Outcome of one coordinated sweep.

    ``results`` is in submission order — index ``i`` is the result of
    ``specs[i]`` — independent of executor, worker count, completion
    order, and any worker deaths survived along the way.
    """

    results: List[Any]
    tasks: int
    #: Unique tasks physically executed (after cache hits and dedup).
    executed: int
    cache_hits: int
    workers: int
    wall_s: float
    #: Duplicate in-flight specs served by another index's execution.
    dedup_hits: int = 0
    #: Re-dispatches performed after worker loss.
    retries: int = 0
    #: Executor transport that ran the sweep.
    executor: str = "serial"

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of tasks served from the cache (0.0 for empty sweeps)."""
        return self.cache_hits / self.tasks if self.tasks else 0.0

    def summary(self) -> str:
        """One-line human-readable engine summary."""
        line = (f"{self.tasks} task(s), {self.workers} worker(s) "
                f"[{self.executor}], {self.cache_hits} cache hit(s) "
                f"({self.cache_hit_rate:.0%}), {self.executed} executed, "
                f"{self.wall_s:.2f}s wall")
        if self.dedup_hits:
            line += f", {self.dedup_hits} dedup hit(s)"
        if self.retries:
            line += f", {self.retries} retried after worker loss"
        return line


@dataclass(frozen=True)
class ProgressEvent:
    """One streamed coordinator state change.

    ``kind`` is one of ``start``, ``cache-hit``, ``done``,
    ``worker-lost``, ``retry``, ``quarantine``, ``finish``.
    """

    kind: str
    done: int
    total: int
    cache_hits: int = 0
    dedup_hits: int = 0
    retries: int = 0
    quarantined: int = 0
    label: str = ""
    worker: str = ""

    def line(self) -> str:
        """Render the one-line progress string the CLIs print."""
        extra = ""
        if self.dedup_hits:
            extra += f", {self.dedup_hits} dedup"
        if self.retries:
            extra += f", {self.retries} retried"
        if self.quarantined:
            extra += f", {self.quarantined} quarantined"
        return (f"{self.done}/{self.total} done, "
                f"{self.cache_hits} cached{extra}")


@dataclass
class _JobState:
    """Book-keeping for one unique in-flight task."""

    spec: RunSpec
    indices: List[int]
    key: str = ""
    attempts: int = 0
    lost_workers: List[str] = field(default_factory=list)


class Coordinator:
    """Drives a spec queue through an executor to a merged report.

    Args:
        executor: Any :class:`~repro.exec.executors.Executor`.  The
            coordinator starts and stops it around :meth:`run`.
        cache: Optional :class:`~repro.exec.cache.ResultCache` (or a
            directory path to open one at).
        max_attempts: Dispatch budget per spec across worker losses;
            exhausting it on distinct workers quarantines the spec.
        on_event: Optional ``callback(ProgressEvent)`` for streaming
            progress (the CLI's live line; tests assert event order).
        workers_hint: Worker count recorded in the report (defaults to
            the executor's ``alive_workers`` at start).
        serial_fallback: When True (the engine's default for
            auto-built executors), a sweep that resolves to at most one
            unique miss skips the transport and runs in-process — the
            historical "don't spin up a pool for one task" behaviour,
            which also preserves raw exception propagation for that
            case.  Explicitly constructed executors keep their
            transport regardless.
    """

    def __init__(self, executor: Executor, *,
                 cache: Optional[ResultCache] = None,
                 max_attempts: int = 3,
                 on_event: Optional[Callable[[ProgressEvent], None]] = None,
                 workers_hint: Optional[int] = None,
                 serial_fallback: bool = False):
        if isinstance(cache, (str, os.PathLike)):
            cache = ResultCache(cache)
        self.executor = executor
        self.cache = cache
        self.max_attempts = max(1, int(max_attempts))
        self.on_event = on_event
        self.workers_hint = workers_hint
        self.serial_fallback = serial_fallback
        self._status_path = (cache.root / STATUS_FILENAME
                             if cache is not None else None)
        self._last_status_write = 0.0
        self._active: Executor = executor

    # ------------------------------------------------------- streaming -----
    def _emit(self, event: ProgressEvent, final: bool = False) -> None:
        if self.on_event is not None:
            self.on_event(event)
        if self._status_path is None:
            return
        now = time.monotonic()
        if not final and now - self._last_status_write < 0.1:
            return  # throttle: the status file is a UI, not a journal
        self._last_status_write = now
        record = dict(asdict(event),
                      state="done" if final else "running",
                      executor=self._active.name,
                      updated_unix=time.time())
        try:
            self._status_path.parent.mkdir(parents=True, exist_ok=True)
            tmp = self._status_path.with_name(
                f".{STATUS_FILENAME}.{os.getpid()}.tmp")
            tmp.write_text(json.dumps(record, sort_keys=True) + "\n")
            os.replace(tmp, self._status_path)
        except OSError:
            pass  # progress is best-effort; never fail a sweep over it

    # ------------------------------------------------------------- run -----
    def run(self, specs: Sequence[RunSpec], *,
            shared: Optional[Mapping[str, Any]] = None,
            timeout: Optional[float] = None) -> SweepReport:
        """Execute *specs*; return the merged, submission-ordered report.

        Args:
            specs: The tasks; each must name a registered entrypoint.
            shared: Payload shipped to every worker once and passed to
                every entrypoint.  Its canonical digest salts every
                cache/dedup key.
            timeout: Per-task wall-clock budget [s], enforced on
                preemptive executors only (serial execution cannot
                preempt a running task and ignores it, as the engine
                always has).

        Raises:
            DCudaUsageError: Unknown entrypoint or unhashable params.
            DCudaTimeoutError: No completion arrived within *timeout*
                while tasks were in flight (the stuck worker is
                killed).
            DCudaWorkerError: A task raised an untyped exception in a
                worker, or a spec was quarantined after exhausting its
                dispatch budget on distinct workers, or every worker
                was lost with no respawn budget left.
        """
        specs = list(specs)
        shared = dict(shared or {})
        t0 = time.perf_counter()
        shared_digest = canonical_digest(shared) if shared else ""

        results: List[Any] = [None] * len(specs)
        cache_hits = 0

        # Group indices by task key.  In-flight dedup is a property of
        # the content-addressed store: it only applies to cacheable
        # specs *with a cache attached* (the second submission would
        # have been a cache hit moments later anyway).  Without a cache
        # — or for non-cacheable wall-clock probes — every index runs
        # on its own, exactly like the pre-service engine.
        groups: Dict[str, List[int]] = {}
        group_spec: Dict[str, RunSpec] = {}
        for idx, spec in enumerate(specs):
            if spec.cacheable and self.cache is not None:
                key = self.cache.key_for(spec, shared_digest)
            else:
                key = f"!independent:{idx}"
            groups.setdefault(key, []).append(idx)
            group_spec.setdefault(key, spec)

        # Cache probe: once per unique key.
        jobs: List[_JobState] = []
        dedup_hits = 0
        for key, indices in groups.items():
            spec = group_spec[key]
            if (self.cache is not None and spec.cacheable):
                hit, value = self.cache.get(key)
                if hit:
                    for idx in indices:
                        results[idx] = value
                    cache_hits += len(indices)
                    continue
            dedup_hits += len(indices) - 1
            jobs.append(_JobState(spec=spec, indices=indices, key=key))

        ex = self.executor
        if (self.serial_fallback and len(jobs) <= 1
                and not isinstance(ex, SerialExecutor)):
            ex = SerialExecutor()
        self._active = ex
        workers = (self.workers_hint
                   if self.workers_hint is not None
                   else max(1, ex.alive_workers()))
        total = len(specs)
        retries = 0
        quarantined: List[_JobState] = []
        done_indices = cache_hits

        def _snapshot(kind, label="", worker=""):
            return ProgressEvent(kind=kind, done=done_indices, total=total,
                                 cache_hits=cache_hits,
                                 dedup_hits=dedup_hits, retries=retries,
                                 quarantined=len(quarantined),
                                 label=label, worker=worker)

        self._emit(_snapshot("start"))
        if not jobs:
            self._emit(_snapshot("finish"), final=True)
            return SweepReport(
                results=results, tasks=total, executed=0,
                cache_hits=cache_hits, workers=workers,
                wall_s=time.perf_counter() - t0, dedup_hits=dedup_hits,
                executor=ex.name)

        ex.start(shared, expected_jobs=len(jobs))
        try:
            pending: Dict[int, _JobState] = {}
            order: List[int] = []  # submission order, for timeout blame
            for job_id, state in enumerate(jobs):
                pending[job_id] = state
                order.append(job_id)
                ex.submit(Job(
                    job_id=job_id, entrypoint=state.spec.entrypoint,
                    params=dict(state.spec.params),
                    label=state.spec.describe()))

            enforce_timeout = timeout is not None and ex.preemptive
            waited = 0.0
            tick = 0.25 if enforce_timeout else 1.0
            while pending:
                comp = ex.next_completion(
                    timeout=tick if ex.preemptive else None)
                if comp is None:
                    if ex.alive_workers() <= 0:
                        raise DCudaWorkerError(
                            "every worker was lost and the respawn "
                            "budget is exhausted; the coordinator "
                            "cannot dispatch the remaining "
                            f"{len(pending)} task(s)")
                    waited += tick
                    if enforce_timeout and waited >= timeout:
                        oldest = next(i for i in order if i in pending)
                        label = pending[oldest].spec.describe()
                        ex.stop(force=True)
                        raise DCudaTimeoutError(
                            f"sweep task {label!r} exceeded the per-task "
                            f"timeout of {timeout}s") from None
                    continue
                waited = 0.0
                state = pending.get(comp.job_id)
                if state is None:
                    continue  # stale completion from a superseded attempt
                if comp.worker_lost:
                    state.attempts += 1
                    if comp.worker:
                        state.lost_workers.append(comp.worker)
                    self._emit(_snapshot("worker-lost",
                                         label=state.spec.describe(),
                                         worker=comp.worker))
                    if state.attempts >= self.max_attempts:
                        del pending[comp.job_id]
                        quarantined.append(state)
                        self._emit(_snapshot(
                            "quarantine", label=state.spec.describe(),
                            worker=comp.worker))
                    else:
                        retries += 1
                        ex.submit(Job(
                            job_id=comp.job_id,
                            entrypoint=state.spec.entrypoint,
                            params=dict(state.spec.params),
                            label=state.spec.describe()))
                        self._emit(_snapshot(
                            "retry", label=state.spec.describe()))
                    continue
                if comp.error is not None:
                    ex.stop(force=True)
                    raise comp.error
                del pending[comp.job_id]
                for idx in state.indices:
                    results[idx] = comp.value
                done_indices += len(state.indices)
                if self.cache is not None and state.spec.cacheable:
                    self.cache.put(state.key, comp.value,
                                   label=state.spec.describe())
                self._emit(_snapshot("done",
                                     label=state.spec.describe(),
                                     worker=comp.worker))
        finally:
            ex.stop()

        if quarantined:
            self._emit(_snapshot("finish"), final=True)
            lines = []
            for state in quarantined:
                workers_lost = ", ".join(state.lost_workers) or "unknown"
                lines.append(
                    f"  {state.spec.describe()!r} killed its worker on "
                    f"all {state.attempts} attempts ({workers_lost})")
            raise DCudaWorkerError(
                f"{len(quarantined)} spec(s) quarantined after "
                f"exhausting {self.max_attempts} dispatch attempts on "
                "distinct workers (the rest of the sweep completed):\n"
                + "\n".join(lines))

        executed = len(jobs)
        self._emit(_snapshot("finish"), final=True)
        return SweepReport(
            results=results, tasks=total, executed=executed,
            cache_hits=cache_hits, workers=workers,
            wall_s=time.perf_counter() - t0, dedup_hits=dedup_hits,
            retries=retries, executor=ex.name)
