"""Named sweep suites: spec lists + table assembly for the CLIs.

A *suite* bundles what ``python -m repro.exec run <name>`` and
``python -m repro.bench <figure> --workers N`` both need: the list of
:class:`~repro.exec.spec.RunSpec` tasks, the shared payload (if any),
and a function that assembles the engine's result list back into the
figure's :class:`~repro.bench.table.Table`.  Keeping the builders here —
rather than in either CLI — means the pytest benchmarks, the figure
runner, and the sweep runner all execute the *same* specs, so their
cached results are interchangeable.

The assembly functions are pure reshaping: all simulation work happens
inside entrypoints (:mod:`repro.exec.points`), all scheduling inside the
coordinator (:mod:`repro.exec.coordinator`) over whichever executor
transport (:mod:`repro.exec.executors`) the caller picked — a suite is
transport-agnostic by construction, which is what makes its digest the
bit-identity witness across serial, pool, subprocess, and HTTP runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..errors import DCudaUsageError
from .spec import RunSpec

__all__ = ["Suite", "build_suite", "SUITE_NAMES"]

#: Fig. 6 packet sizes (1 B .. 4 MB) — matches the benchmark module.
_FIG6_SIZES = tuple(4 ** k for k in range(0, 12))
#: Fig. 7/8 compute-iteration sweep — matches the benchmark modules.
_OVERLAP_ITERS = (0, 16, 64, 128, 256, 512)


@dataclass
class Suite:
    """One runnable sweep: specs in, rendered table out."""

    name: str
    specs: List[RunSpec]
    #: Payload shipped once to every worker (e.g. the chaos baseline).
    shared: Dict[str, Any] = field(default_factory=dict)
    #: ``assemble(results) -> str`` — render the merged results.
    assemble: Callable[[List[Any]], str] = lambda results: repr(results)


def _chaos_suite(seeds: Sequence[int], nodes: int, ranks: int,
                 steps: int) -> Suite:
    from ..apps.diffusion import DiffusionWorkload
    from ..faults.report import chaos_specs, sweep_table

    wl = DiffusionWorkload(ni=8, nj_per_device=2 * ranks, nk=2,
                           steps=steps)
    specs, shared = chaos_specs(seeds, nodes, ranks, wl=wl)

    def assemble(outcomes):
        return sweep_table(outcomes).render()

    return Suite("chaos", specs, shared=shared, assemble=assemble)


def _fig6_suite(iterations: int) -> Suite:
    from ..bench.table import Table

    specs = [RunSpec("pingpong_point",
                     dict(shared_mem=shared_mem, packet_bytes=size,
                          iterations=iterations),
                     label=f"fig6:{'shm' if shared_mem else 'dist'}:{size}B")
             for shared_mem in (True, False) for size in _FIG6_SIZES]

    def assemble(results):
        half = len(_FIG6_SIZES)
        shared, dist = results[:half], results[half:]
        table = Table("Fig. 6 - put bandwidth vs packet size",
                      ["packet [B]", "shared [MB/s]", "distributed [MB/s]",
                       "shared lat [us]", "distributed lat [us]"])
        for s, d in zip(shared, dist):
            table.add_row(s.packet_bytes, s.bandwidth / 1e6,
                          d.bandwidth / 1e6, s.latency * 1e6,
                          d.latency * 1e6)
        return table.render()

    return Suite("fig6", specs, assemble=assemble)


def overlap_sweep_specs(mode: str, steps: int, nodes: int,
                        ranks_per_device: int,
                        iters: Sequence[int] = _OVERLAP_ITERS):
    """Spec list for one overlap figure + the row-reassembly recipe.

    Returns:
        ``(specs, reassemble)`` where ``reassemble(results)`` yields
        ``[(n, both, comp, exchange_only), ...]`` in sweep order.
    """
    base = dict(mode=mode, steps=steps, num_nodes=nodes,
                ranks_per_device=ranks_per_device)
    specs = [RunSpec("overlap_point",
                     dict(base, compute_iters=0, do_compute=False,
                          do_exchange=True),
                     label=f"{mode}:exchange-only")]
    for n in iters:
        specs.append(RunSpec("overlap_point",
                             dict(base, compute_iters=n, do_compute=True,
                                  do_exchange=True),
                             label=f"{mode}:both:{n}"))
        if n:
            specs.append(RunSpec("overlap_point",
                                 dict(base, compute_iters=n,
                                      do_compute=True, do_exchange=False),
                                 label=f"{mode}:compute-only:{n}"))

    def reassemble(results):
        ex = results[0].elapsed
        rows, i = [], 1
        for n in iters:
            both = results[i].elapsed
            i += 1
            comp = 0.0
            if n:
                comp = results[i].elapsed
                i += 1
            rows.append((n, both, comp, ex))
        return rows

    return specs, reassemble


def _overlap_suite(name: str, mode: str, title: str, col0: str,
                   steps: int, nodes: int) -> Suite:
    from ..bench.table import Table

    specs, reassemble = overlap_sweep_specs(mode, steps, nodes, 52)

    def assemble(results):
        table = Table(title, [col0, "compute&exchange [ms]",
                              "compute only [ms]", "halo exchange [ms]"])
        for n, both, comp, ex in reassemble(results):
            table.add_row(n, both * 1e3, comp * 1e3, ex * 1e3)
        return table.render()

    return Suite(name, specs, assemble=assemble)


def _weak_scaling_suite(name: str, app: str, node_counts: Sequence[int],
                        verify: bool) -> Suite:
    from ..bench.weak_scaling import weak_scaling_specs, weak_scaling_table

    specs, wl = weak_scaling_specs(app, node_counts, verify=verify)

    def assemble(rows):
        return weak_scaling_table(app, wl, rows).render()

    return Suite(name, specs, assemble=assemble)


#: Overlap-miniature shape for the topo suite's efficiency report.
#: 26 ranks/device = 2 blocks per SM on the Greina GPU — enough
#: over-subscription that the SM can hide halo waits behind compute.
_TOPO_OVERLAP = dict(mode="copy", compute_iters=64, steps=4,
                     ranks_per_device=26, halo_bytes=1024)


def _topo_overlap_cfg(kind: str, nodes: int, gpus: int, backend: str):
    """Machine config for one (backend, topology) overlap miniature."""
    from ..hw.config import greina
    from ..platform import fat_tree, flat, ring

    if kind == "flat":
        topo = flat(num_nodes=nodes, gpus_per_node=gpus)
    elif kind == "fat_tree":
        topo = fat_tree(num_nodes=nodes, gpus_per_node=gpus)
    else:
        topo = ring(nodes, gpus_per_node=gpus)
    return greina(topology=topo, comm_backend=backend)


def _topo_suite(kinds: Sequence[str], nodes: int, gpus: int,
                iterations: int,
                backends: Sequence[str] = ("proxy",)) -> Suite:
    from ..bench.table import Table

    # "far" is the ring diameter (nodes//2), which is also the last node
    # of the other fat-tree leaf on larger machines.
    pairs = [("same-node", (0, 0), (0, 1 if gpus > 1 else 0)),
             ("adjacent", (0, 0), (1 if nodes > 1 else 0, 0)),
             ("far", (0, 0), (nodes // 2, 0))]
    specs = [RunSpec("topology_point",
                     dict(kind=kind, num_nodes=nodes, gpus_per_node=gpus,
                          a=a, b=b, packet_bytes=1024,
                          iterations=iterations, comm_backend=backend),
                     label=f"topo:{backend}:{kind}:{pair}")
             for backend in backends
             for kind in kinds for pair, a, b in pairs]
    # One overlap miniature per (backend, topology): compute&exchange,
    # compute-only, exchange-only — the three terms of the overlap
    # efficiency (compute + exchange - both) / exchange.
    variants = [("both", True, True), ("compute", True, False),
                ("exchange", False, True)]
    for backend in backends:
        for kind in kinds:
            cfg = _topo_overlap_cfg(kind, nodes, gpus, backend)
            for vname, do_compute, do_exchange in variants:
                params = dict(_TOPO_OVERLAP, num_nodes=nodes, cfg=cfg,
                              do_compute=do_compute,
                              do_exchange=do_exchange)
                if not do_compute:
                    params["compute_iters"] = 0
                specs.append(RunSpec(
                    "overlap_point", params,
                    label=f"topo-overlap:{backend}:{kind}:{vname}"))

    def assemble(results):
        table = Table(f"Topology matrix - 1 KiB put latency "
                      f"({nodes} nodes x {gpus} GPU(s))",
                      ["backend", "interconnect", "pair", "latency [us]",
                       "bandwidth [MB/s]"])
        i = 0
        for backend in backends:
            for kind in kinds:
                for pair, _a, _b in pairs:
                    r = results[i]
                    i += 1
                    table.add_row(backend, kind, pair, r.latency * 1e6,
                                  r.bandwidth / 1e6)
        eff = Table("Overlap efficiency per (backend, topology) - "
                    "copy kernel, 64 iters/exchange",
                    ["backend", "interconnect", "both [us]",
                     "compute [us]", "exchange [us]", "efficiency"])
        for backend in backends:
            for kind in kinds:
                both, comp, ex = (results[i].elapsed,
                                  results[i + 1].elapsed,
                                  results[i + 2].elapsed)
                i += 3
                efficiency = (comp + ex - both) / ex if ex > 0 else 0.0
                eff.add_row(backend, kind, both * 1e6, comp * 1e6,
                            ex * 1e6, efficiency)
        eff.add_note("efficiency = (compute-only + exchange-only - both)"
                     " / exchange-only; 1.0 = full overlap")
        return table.render() + "\n\n" + eff.render()

    return Suite("topo", specs, assemble=assemble)


#: ML-suite interconnect kinds — the two shapes the collectives story
#: contrasts (ring's flat fabric vs hierarchical's dense fat tree).
_ML_KINDS = ("flat", "fat_tree")
#: Allreduce message length (float64 elements) for the latency table.
_ML_ELEMS = 4096
#: Gradient sizes for the autotuned SGD rows: small enough that the
#: latency terms dominate (tree territory) and large enough that the
#: bandwidth terms dominate (ring on flat, hierarchical on fat tree).
_ML_FEATURES = (64, 65536)


def _ml_suite(kinds: Sequence[str], nodes: int, gpus: int,
              backends: Sequence[str]) -> Suite:
    from ..bench.table import Table
    from ..dcuda.collectives import ALGORITHMS

    # Streaming-GEMV scale: enough rows per worker that the tile
    # multiplies can actually hide the streaming (cf. Fig. 7/8).
    gemm = dict(m=(nodes * gpus - 1) * 2048, k=96, batch=32, tiles=8,
                slots=4)
    specs = []
    for backend in backends:
        for kind in kinds:
            shape = dict(kind=kind, num_nodes=nodes, gpus_per_node=gpus,
                         comm_backend=backend)
            for alg in ALGORITHMS:
                specs.append(RunSpec(
                    "collective_point",
                    dict(shape, op="allreduce", algorithm=alg,
                         elems=_ML_ELEMS),
                    label=f"ml-coll:{backend}:{kind}:{alg}"))
            for mode in ("both", "compute", "stream"):
                specs.append(RunSpec(
                    "gemm_point", dict(shape, mode=mode,
                                       algorithm="ring", **gemm),
                    label=f"ml-gemm:{backend}:{kind}:{mode}"))
            for features in _ML_FEATURES:
                specs.append(RunSpec(
                    "train_point", dict(shape, features=features,
                                        steps=2, algorithm="auto"),
                    label=f"ml-train:{backend}:{kind}:{features}"))

    def assemble(results):
        ranks = nodes * gpus
        coll = Table(f"ML collectives - allreduce latency "
                     f"({_ML_ELEMS} float64, {ranks} ranks)",
                     ["backend", "topology", "algorithm", "latency [us]",
                      "exact"])
        gemm_t = Table("Pipelined GEMM - overlap decomposition "
                       "(median worker loop)",
                       ["backend", "topology", "both [us]",
                        "compute [us]", "stream [us]", "efficiency"])
        train = Table("Autotuned data-parallel SGD step",
                      ["backend", "topology", "features", "chosen",
                       "predicted [us]", "measured [us]", "verified"])
        i = 0
        for backend in backends:
            for kind in kinds:
                for alg in ALGORITHMS:
                    r = results[i]
                    i += 1
                    coll.add_row(backend, kind, alg,
                                 r["elapsed"] * 1e6,
                                 "yes" if r["ok"] else "NO")
                both, comp, stream = results[i], results[i + 1], \
                    results[i + 2]
                i += 3
                eff = ((comp["elapsed"] + stream["elapsed"]
                        - both["elapsed"]) / stream["elapsed"]
                       if stream["elapsed"] > 0 else 0.0)
                gemm_t.add_row(backend, kind, both["elapsed"] * 1e6,
                               comp["elapsed"] * 1e6,
                               stream["elapsed"] * 1e6, eff)
                for features in _ML_FEATURES:
                    r = results[i]
                    i += 1
                    train.add_row(backend, kind, features,
                                  r["algorithm"],
                                  r["predicted"] * 1e6,
                                  r["elapsed"] * 1e6,
                                  "yes" if r["ok"] else "NO")
        coll.add_note("every algorithm reduces bit-identically; the "
                      "latency spread is the schedule")
        gemm_t.add_note("efficiency = (compute + stream - both) / "
                        "stream; 1.0 = streaming fully hidden")
        train.add_note("chosen by the CollectiveAutotuner per "
                       "(topology, group, message size)")
        return (coll.render() + "\n\n" + gemm_t.render() + "\n\n"
                + train.render())

    return Suite("ml", specs, assemble=assemble)


def _simperf_suite(quick: bool, comm_backend: str = "proxy") -> Suite:
    from ..bench.simperf import simperf_specs, simperf_table

    specs = simperf_specs(quick=quick, comm_backend=comm_backend)

    def assemble(results):
        return simperf_table(results).render()

    return Suite("simperf", specs, assemble=assemble)


SUITE_NAMES = ("chaos", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
               "topo", "ml", "simperf")


def build_suite(name: str, *, seeds: int = 50, nodes: int = 2,
                ranks: int = 2, steps: int = 2, iterations: int = 30,
                overlap_steps: int = 20, overlap_nodes: int = 8,
                node_counts: Optional[Sequence[int]] = None,
                verify: bool = True, full: bool = False,
                topology: Optional[Sequence[str]] = None,
                topo_nodes: int = 4, topo_gpus: int = 2,
                backends: Optional[Sequence[str]] = None) -> Suite:
    """Construct a named suite with the given knobs.

    Args:
        name: One of :data:`SUITE_NAMES`.
        seeds: Chaos-sweep seed count (seeds ``0..N-1``).
        nodes/ranks/steps: Chaos cluster size, over-subscription, and
            diffusion iterations.
        iterations: Fig. 6 ping-pong iterations per packet size.
        overlap_steps/overlap_nodes: Fig. 7/8 sweep shape.
        node_counts: Fig. 9-11 node counts (figure default when ``None``).
        verify: Reference-verify the weak-scaling figures.
        full: Figure-scale simperf workload instead of the quick probe.
        topology: topo/ml: interconnect kinds to sweep (topo: all
            three; ml: flat and fat_tree — when ``None``).
        topo_nodes/topo_gpus: topo/ml: machine shape per kind.
        backends: topo/ml/simperf: communication backends to sweep
            (``("proxy",)`` when ``None``; simperf uses the first).

    Raises:
        DCudaUsageError: Unknown suite name.
    """
    if name == "chaos":
        return _chaos_suite(range(seeds), nodes, ranks, steps)
    if name == "fig6":
        return _fig6_suite(iterations)
    if name == "fig7":
        return _overlap_suite(
            "fig7", "newton",
            "Fig. 7 - overlap for square root calculation (Newton-Raphson)",
            "newton iters/exchange", overlap_steps, overlap_nodes)
    if name == "fig8":
        return _overlap_suite(
            "fig8", "copy", "Fig. 8 - overlap for memory-to-memory copy",
            "copy iters/exchange", overlap_steps, overlap_nodes)
    if name == "fig9":
        return _weak_scaling_suite("fig9", "particles",
                                   node_counts or (1, 2, 4, 8), verify)
    if name == "fig10":
        return _weak_scaling_suite("fig10", "stencil",
                                   node_counts or (1, 2, 4, 8), verify)
    if name == "fig11":
        return _weak_scaling_suite("fig11", "spmv",
                                   node_counts or (1, 4, 9), verify)
    backend_list = tuple(backends) if backends else ("proxy",)
    from ..hw.config import COMM_BACKENDS

    for backend in backend_list:
        if backend not in COMM_BACKENDS:
            raise DCudaUsageError(
                f"unknown comm backend {backend!r}; available: "
                f"{', '.join(COMM_BACKENDS)}")
    if name == "topo":
        from ..platform import INTERCONNECT_KINDS

        kinds = tuple(topology) if topology else INTERCONNECT_KINDS
        for kind in kinds:
            if kind not in INTERCONNECT_KINDS:
                raise DCudaUsageError(
                    f"unknown interconnect kind {kind!r}; available: "
                    f"{', '.join(INTERCONNECT_KINDS)}")
        return _topo_suite(kinds, topo_nodes, topo_gpus, iterations,
                           backends=backend_list)
    if name == "ml":
        kinds = tuple(topology) if topology else _ML_KINDS
        for kind in kinds:
            if kind not in _ML_KINDS:
                raise DCudaUsageError(
                    f"unknown ml topology kind {kind!r}; available: "
                    f"{', '.join(_ML_KINDS)}")
        return _ml_suite(kinds, topo_nodes, topo_gpus, backend_list)
    if name == "simperf":
        return _simperf_suite(quick=not full,
                              comm_backend=backend_list[0])
    raise DCudaUsageError(
        f"unknown suite {name!r}; available: {', '.join(SUITE_NAMES)}")
