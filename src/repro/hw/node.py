"""A cluster node: host CPU + one or more GPUs with their PCIe links."""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from ..platform.resolve import NodeSpec
from ..sim import Environment, Event, Resource, Tracer
from .config import MachineConfig
from .gpu import Device
from .pcie import PCIeLink

__all__ = ["Node"]


class Node:
    """One node: a host, ``gpus_per_node`` GPUs, and a PCIe port each.

    The host *runtime worker* is a single FCFS resource — the paper's
    runtime system "guarantees progress using a single worker thread"
    (§III-A), so all block-manager and event-handler actions on a node
    serialize on it, regardless of how many GPUs the node carries.

    The node's shape comes from its resolved platform
    :class:`~repro.platform.resolve.NodeSpec`: GPU count, per-class
    GPU/PCIe configs, and the intra-node GPU↔GPU link.  Single-GPU nodes
    keep the legacy component names (``node3.gpu``, ``node3.pcie``) so
    fault targets and metric labels stay stable; dense nodes number
    their devices (``node3.gpu0`` … ``node3.gpu3``).  :attr:`device` and
    :attr:`pcie` alias the first GPU/port for the one-GPU call sites.
    """

    def __init__(self, env: Environment, cfg: MachineConfig, index: int,
                 tracer: Optional[Tracer] = None, obs: Any = None,
                 faults: Any = None, spec: Optional[NodeSpec] = None):
        self.env = env
        self.cfg = cfg
        self.index = index
        self.name = f"node{index}"
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        #: Observability handle (or None); the runtime layer picks it up
        #: from here to instrument this node's queues and managers.
        self.obs = obs
        #: Fault plane (or None); the runtime layer picks it up from here
        #: to harden this node's queues and bound its handshakes.
        self.faults = faults
        if spec is None:
            spec = NodeSpec(index=index, class_name="node", gpus_per_node=1,
                            gpu=cfg.gpu, pcie=cfg.pcie, intra_link=None)
        #: Resolved platform description of this node.
        self.spec = spec
        single = spec.gpus_per_node == 1
        #: The node's GPUs, indexed by local GPU ordinal.
        self.gpus: List[Device] = []
        #: One host↔device PCIe port per GPU.
        self.pcie_ports: List[PCIeLink] = []
        for g in range(spec.gpus_per_node):
            suffix = "" if single else str(g)
            self.gpus.append(Device(env, spec.gpu,
                                    name=f"{self.name}.gpu{suffix}",
                                    tracer=self.tracer, obs=obs,
                                    faults=faults))
            self.pcie_ports.append(PCIeLink(env, spec.pcie,
                                            name=f"{self.name}.pcie{suffix}"))
        #: First GPU / PCIe port (the whole machine on single-GPU nodes).
        self.device = self.gpus[0]
        self.pcie = self.pcie_ports[0]
        self.worker = Resource(env, capacity=1, name=f"{self.name}.worker")

    @property
    def gpus_per_node(self) -> int:
        return len(self.gpus)

    def gpu(self, index: int) -> Device:
        """The node's GPU *index* (0-based local ordinal)."""
        return self.gpus[index]

    def pcie_port(self, index: int) -> PCIeLink:
        """The PCIe port attached to GPU *index*."""
        return self.pcie_ports[index]

    def host_work(self, duration: float) -> Generator[Event, Any, None]:
        """Charge *duration* of host runtime-worker time (FCFS)."""
        return self.worker.use(duration)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<Node {self.name} ({len(self.gpus)} GPU(s))>"
