"""A cluster node: host CPU + GPU + PCIe link."""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..sim import Environment, Event, Resource, Tracer
from .config import MachineConfig
from .gpu import Device
from .pcie import PCIeLink

__all__ = ["Node"]


class Node:
    """One Greina node: a Haswell host, one GPU, and the PCIe link.

    The host *runtime worker* is a single FCFS resource — the paper's
    runtime system "guarantees progress using a single worker thread"
    (§III-A), so all block-manager and event-handler actions on a node
    serialize on it.
    """

    def __init__(self, env: Environment, cfg: MachineConfig, index: int,
                 tracer: Optional[Tracer] = None, obs: Any = None,
                 faults: Any = None):
        self.env = env
        self.cfg = cfg
        self.index = index
        self.name = f"node{index}"
        self.tracer = tracer or Tracer(enabled=False)
        #: Observability handle (or None); the runtime layer picks it up
        #: from here to instrument this node's queues and managers.
        self.obs = obs
        #: Fault plane (or None); the runtime layer picks it up from here
        #: to harden this node's queues and bound its handshakes.
        self.faults = faults
        self.device = Device(env, cfg.gpu, name=f"{self.name}.gpu",
                             tracer=self.tracer, obs=obs, faults=faults)
        self.pcie = PCIeLink(env, cfg.pcie, name=f"{self.name}.pcie")
        self.worker = Resource(env, capacity=1, name=f"{self.name}.worker")

    def host_work(self, duration: float) -> Generator[Event, Any, None]:
        """Charge *duration* of host runtime-worker time (FCFS)."""
        return self.worker.use(duration)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<Node {self.name}>"
