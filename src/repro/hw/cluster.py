"""The simulated GPU cluster: nodes + interconnect + shared clock."""

from __future__ import annotations

from typing import List, Optional

from ..faults.plane import FaultPlane
from ..obs.core import Observability
from ..platform.resolve import Platform
from ..sim import Environment, Tracer
from ..net.fabric import Fabric
from .config import MachineConfig, greina
from .node import Node

__all__ = ["Cluster"]


class Cluster:
    """A cluster of nodes described by the resolved :class:`Platform`.

    Owns the simulation :class:`Environment`, the per-node hardware, the
    interconnect :class:`Fabric`, the activity :class:`Tracer`, and the
    :class:`~repro.obs.Observability` handle (metrics registry).  All
    higher layers (MPI substrate, dCUDA runtime, applications) are built
    against a ``Cluster`` instance.

    The hardware shape — node count, GPUs per node, per-class configs,
    interconnect routes — comes from :attr:`platform`, which resolves
    the config's declarative :class:`~repro.platform.topology.Topology`
    (or the legacy "N identical single-GPU nodes on a flat fabric" shape
    when no topology is set).
    """

    def __init__(self, cfg: Optional[MachineConfig] = None,
                 env: Optional[Environment] = None):
        # `x if x is not None else default`, never `x or default`: a
        # caller-supplied object must not be silently replaced just
        # because it is falsy (e.g. an Environment subclass defining
        # __bool__/__len__).
        self.cfg = cfg if cfg is not None else greina()
        self.env = env if env is not None else Environment()
        #: The resolved hardware abstraction (topology, routes, specs).
        self.platform = Platform(self.cfg)
        self.obs = Observability(self.env, self.cfg.obs)
        # Observability implies interval tracing (the overlap report and
        # the Perfetto export are computed from the intervals).
        self.tracer = Tracer(enabled=self.cfg.tracing or (
            self.obs.enabled and self.cfg.obs.trace_intervals))
        if self.obs.enabled and self.cfg.obs.event_loop_stats:
            self.env.enable_stats()
        #: Fault plane (or None when ``cfg.faults`` is unset/disabled);
        #: threaded through nodes, devices, links, and queues exactly like
        #: the observability handle.
        self.faults = FaultPlane.build(self.env, self.cfg.faults,
                                       self.platform.num_nodes, obs=self.obs)
        self.nodes: List[Node] = [
            Node(self.env, self.cfg, i, tracer=self.tracer, obs=self.obs,
                 faults=self.faults, spec=self.platform.node_spec(i))
            for i in range(self.platform.num_nodes)
        ]
        self.fabric = Fabric(self.env, self.cfg.fabric,
                             self.platform.num_nodes, obs=self.obs,
                             faults=self.faults, platform=self.platform)

    @property
    def num_nodes(self) -> int:
        return self.platform.num_nodes

    @property
    def total_gpus(self) -> int:
        return self.platform.total_gpus

    def node(self, index: int) -> Node:
        return self.nodes[index]

    def run(self, until: Optional[float] = None) -> float:
        """Run the simulation; returns the final simulated time."""
        self.env.run(until=until)
        return self.env.now

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<Cluster {self.num_nodes} nodes @ t={self.env.now:.6e}s>"
