"""PCI-Express host↔device link model.

Two transfer mechanisms, matching §III-C "Memory Mapping":

* *mapped-memory transactions* (gdrcopy-style): a fixed cost per access,
  used by the circular queues — one PCIe write per enqueue, one PCIe read
  per tail-pointer reload;
* the *DMA engine*: high setup latency, streams at link bandwidth — the
  right tool for bulk copies (cudaMemcpy in the MPI-CUDA baseline, host
  staging of large messages).

Mapped transactions and DMA copies use independent engines; each serializes
its own users.
"""

from __future__ import annotations

from typing import Any, Generator

from ..sim import PENDING, Environment, Event, Semaphore
from .config import PCIeConfig

__all__ = ["PCIeLink"]


class PCIeLink:
    """The host↔device link of one node."""

    def __init__(self, env: Environment, cfg: PCIeConfig,
                 name: str = "pcie0"):
        self.env = env
        self.cfg = cfg
        self.name = name
        self._mapped_lock = Semaphore(env, 1, name=f"mapped:{name}")
        self._dma_lock = Semaphore(env, 1, name=f"dma:{name}")
        # -- statistics
        self.mapped_writes = 0
        self.mapped_reads = 0
        self.dma_copies = 0
        self.dma_bytes = 0.0

    def _transact(self, lock: Semaphore,
                  cost: float) -> Generator[Event, Any, None]:
        # Inlined uncontended-semaphore fast path (see Semaphore.acquire);
        # every queue operation crosses this generator, so one frame and
        # one Event fewer per transaction add up.
        if lock._available > 0 and not lock._queue:
            lock._available -= 1
            yield 0.0
        else:
            free = lock._efree
            if free:
                ev = free.pop()
                ev.callbacks = []
                ev._value = PENDING
                ev._scheduled = False
            else:
                ev = Event(lock.env, lock._req_name)
            lock._queue.append(ev)
            yield ev
            free.append(ev)
        try:
            yield cost
        finally:
            lock.release()

    def mapped_post(self) -> Generator[Event, Any, None]:
        """Issue one posted mapped-memory write (e.g. a queue enqueue).

        The issuer pays only the engine occupancy — posted writes pipeline.
        Visibility at the receiver lags by ``mapped_write_latency``; callers
        model that with :meth:`write_visibility_delay`.
        """
        self.mapped_writes += 1
        return self._transact(self._mapped_lock,
                              self.cfg.mapped_post_occupancy)

    @property
    def write_visibility_delay(self) -> float:
        """Delay until a posted write is visible in receiver memory."""
        return self.cfg.mapped_write_latency

    def mapped_read(self) -> Generator[Event, Any, None]:
        """One mapped-memory read transaction (e.g. tail-pointer reload)."""
        self.mapped_reads += 1
        return self._transact(self._mapped_lock, self.cfg.mapped_read)

    def dma_time(self, nbytes: float) -> float:
        return self.cfg.dma_startup + nbytes / self.cfg.bandwidth

    def dma_copy(self, nbytes: float) -> Generator[Event, Any, None]:
        """A DMA bulk copy of *nbytes* in either direction."""
        if nbytes < 0:
            raise ValueError(f"negative copy size {nbytes!r}")
        self.dma_copies += 1
        self.dma_bytes += nbytes
        return self._transact(self._dma_lock, self.dma_time(nbytes))
