"""Device-memory model.

Device memory is a max-min fair shared medium: all concurrent accesses share
the aggregate bandwidth.  A single block additionally cannot exceed its
per-block streaming rate (``GPUConfig.block_mem_bandwidth``) — this floor is
what caps the shared-memory put bandwidth in Fig. 6, because a shared-memory
``put`` is executed by one block's threads.
"""

from __future__ import annotations

from typing import Any, Generator

from ..sim import AllOf, Environment, Event, FairShareLink
from .config import GPUConfig

__all__ = ["DeviceMemory"]


class DeviceMemory:
    """Aggregate device-memory bandwidth shared by all SMs."""

    def __init__(self, env: Environment, cfg: GPUConfig,
                 name: str = "devmem", obs: Any = None, faults: Any = None):
        self.env = env
        self.cfg = cfg
        self.name = name
        self.link = FairShareLink(env, cfg.mem_bandwidth, name=name,
                                  obs=obs, faults=faults)

    @property
    def bytes_transferred(self) -> float:
        return self.link.bytes_transferred

    def access_event(self, nbytes: float, block_limited: bool = True,
                     latency: bool = True) -> Event:
        """Event that fires when *nbytes* of traffic completes.

        The duration is the *maximum* of the fair-share completion time and
        the per-block streaming floor, plus one access latency.
        """
        if nbytes < 0:
            raise ValueError(f"negative access size {nbytes!r}")
        parts = []
        if nbytes > 0:
            parts.append(self.link.transfer(nbytes))
        floor = 0.0
        if latency:
            floor += self.cfg.mem_latency
        if block_limited and nbytes > 0:
            floor += nbytes / self.cfg.block_mem_bandwidth
        if floor > 0:
            parts.append(self.env.timeout(floor))
        if not parts:
            ev = self.env.event()
            ev.succeed()
            return ev
        if len(parts) == 1:
            return parts[0]
        return AllOf(self.env, parts)

    def access(self, nbytes: float, block_limited: bool = True,
               latency: bool = True) -> Generator[Event, Any, None]:
        """Blocking form of :meth:`access_event`."""
        yield self.access_event(nbytes, block_limited, latency)

    def copy(self, nbytes: float) -> Generator[Event, Any, None]:
        """A device-side memory-to-memory copy: read + write traffic."""
        yield self.access_event(2.0 * nbytes)
