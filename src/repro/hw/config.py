"""Machine configuration and cost-model calibration.

All hardware parameters live here as frozen dataclasses so experiments can
sweep them (the ablation benchmarks do).  The default values form the
``greina()`` preset, calibrated against the numbers the paper reports for the
Greina cluster at CSCS (§IV-A/B):

* network: 4× EDR InfiniBand, 6 GB/s host-staged bandwidth, small-message
  one-way latency ≈ 0.9 µs,
* GPUDirect device-to-device RDMA bandwidth ≈ 2.06 GB/s (Kepler-era PCIe
  reads from device memory are the bottleneck — this is why the paper's
  OpenMPI host-stages messages above 30 kB "to achieve better bandwidth"),
* Tesla K80 (one GK210 used): 13 SMs, up to 16 blocks in flight per SM
  (208 blocks total with the paper's launch configuration), ~200 GB/s-class
  device memory,
* single-block copy bandwidth ≈ 4.46 GB/s ("a single block cannot saturate
  the memory interface", Fig. 6),
* notified-put end-to-end latency targets: 7.8 µs shared-memory ranks,
  9.4 µs distributed-memory ranks (§IV-B).

Times are seconds, sizes are bytes, compute is FLOPs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..errors import DCudaUsageError
from ..faults.config import FaultsConfig, default_faults
from ..obs.config import ObsConfig, default_obs
from ..platform.placement import PlacementSpec
from ..platform.topology import Topology

__all__ = [
    "GPUConfig",
    "PCIeConfig",
    "FabricConfig",
    "HostConfig",
    "DeviceLibConfig",
    "MPICUDAConfig",
    "DeviceCommConfig",
    "StreamCommConfig",
    "COMM_BACKENDS",
    "MachineConfig",
    "greina",
]

#: Registered communication-backend names (see :mod:`repro.comm`):
#: ``proxy`` is the paper's host block-manager path, ``device`` the
#: symmetric-heap device-initiated path, ``stream`` the deferred
#: stream-triggered path.
COMM_BACKENDS = ("proxy", "device", "stream")


def _require_positive(obj, **fields) -> None:
    """Reject non-positive values at construction (typed, not downstream).

    A zero bandwidth or count would otherwise surface later as a
    ``ZeroDivisionError`` deep in the event loop — or worse, as a
    simulation that silently never progresses.
    """
    for name, value in fields.items():
        if not value > 0:
            raise DCudaUsageError(
                f"{type(obj).__name__}.{name} must be positive, "
                f"got {value!r}")


def _require_non_negative(obj, **fields) -> None:
    """Reject negative latencies/overheads at construction (zero is fine)."""
    for name, value in fields.items():
        if value < 0:
            raise DCudaUsageError(
                f"{type(obj).__name__}.{name} must be non-negative, "
                f"got {value!r}")


@dataclass(frozen=True)
class GPUConfig:
    """Compute-device model parameters (one GK210 of a Tesla K80)."""

    #: Number of streaming multiprocessors.
    num_sms: int = 13
    #: Maximum blocks in flight per SM.  The paper limits over-subscription
    #: to what the device keeps in flight at once (208 blocks / 13 SMs = 16).
    max_blocks_per_sm: int = 16
    #: Aggregate double-precision throughput of the device [FLOP/s].
    flops: float = 1.2e12
    #: Aggregate device-memory bandwidth [B/s].
    mem_bandwidth: float = 200e9
    #: Device-memory access latency charged once per compute phase [s].
    mem_latency: float = 0.8e-6
    #: Memory streaming rate achievable by a single block [B/s].  A put's
    #: copy moves 2x its payload (read + write), so this calibrates the
    #: shared-memory put-bandwidth ceiling of Fig. 6 to ~4.46 GB/s.
    block_mem_bandwidth: float = 8.92e9
    #: Load/store issue throughput of one SM [B/s]: a memory-bound phase
    #: occupies its SM's issue unit for ``bytes / sm_lsu_bandwidth``.  The
    #: default (2x the per-SM share of device bandwidth) never throttles the
    #: aggregate but staggers co-resident blocks -- the instruction-issue
    #: interleaving that lets one block's wait hide under another's loads.
    sm_lsu_bandwidth: float = 31.0e9
    #: Kernel-launch latency for the fork-join (MPI-CUDA) model [s].
    launch_latency: float = 8.0e-6

    def __post_init__(self) -> None:
        _require_positive(self, num_sms=self.num_sms,
                          max_blocks_per_sm=self.max_blocks_per_sm,
                          flops=self.flops,
                          mem_bandwidth=self.mem_bandwidth,
                          block_mem_bandwidth=self.block_mem_bandwidth,
                          sm_lsu_bandwidth=self.sm_lsu_bandwidth)
        _require_non_negative(self, mem_latency=self.mem_latency,
                              launch_latency=self.launch_latency)

    @property
    def flops_per_sm(self) -> float:
        return self.flops / self.num_sms

    @property
    def max_blocks(self) -> int:
        """Device-wide resident-block limit (the dCUDA rank count cap)."""
        return self.num_sms * self.max_blocks_per_sm


@dataclass(frozen=True)
class PCIeConfig:
    """Host↔device link model.

    Queue operations use *mapped memory* (gdrcopy): a single PCIe
    transaction per enqueue, per the paper's queue design (§III-C).  Bulk
    copies use the DMA engine, which has a large setup latency but streams
    at link bandwidth.
    """

    #: Engine occupancy of one mapped-memory (posted) PCIe write [s] —
    #: posted writes pipeline, so the issuer only pays this much and the
    #: link sustains ~1/occupancy transactions per second.
    mapped_post_occupancy: float = 0.1e-6
    #: Additional delay until a posted write becomes visible in receiver
    #: memory [s].
    mapped_write_latency: float = 1.1e-6
    #: Cost of one mapped-memory PCIe *read* transaction — a full round
    #: trip, blocking (e.g. the sender reloading the queue tail pointer
    #: for flow control) [s].
    mapped_read: float = 1.1e-6
    #: DMA engine setup latency [s].
    dma_startup: float = 9.0e-6
    #: Link streaming bandwidth [B/s] (PCIe 3.0 x16 effective).
    bandwidth: float = 10.0e9

    def __post_init__(self) -> None:
        _require_positive(self, bandwidth=self.bandwidth)
        _require_non_negative(
            self, mapped_post_occupancy=self.mapped_post_occupancy,
            mapped_write_latency=self.mapped_write_latency,
            mapped_read=self.mapped_read, dma_startup=self.dma_startup)


@dataclass(frozen=True)
class FabricConfig:
    """Inter-node interconnect (4× EDR InfiniBand) model."""

    #: One-way wire/switch latency for any message [s].
    latency: float = 1.15e-6
    #: Sender-side injection overhead per message [s] (LogGP *o*).
    injection_overhead: float = 0.06e-6
    #: Bandwidth for host-staged transfers [B/s].
    bandwidth: float = 6.0e9
    #: Bandwidth for direct device-to-device (GPUDirect RDMA) transfers
    #: [B/s].  Deliberately much lower than `bandwidth` — Kepler-era PCIe
    #: reads from device memory bottleneck GPUDirect, which is exactly why
    #: OpenMPI host-stages large messages (paper §IV-C, stencil discussion).
    d2d_bandwidth: float = 2.06e9
    #: Message size above which the MPI library stages device buffers
    #: through host memory (OpenMPI default, paper: 30 kB).
    staging_threshold: int = 30 * 1024

    def __post_init__(self) -> None:
        _require_positive(self, bandwidth=self.bandwidth,
                          d2d_bandwidth=self.d2d_bandwidth)
        _require_non_negative(self, latency=self.latency,
                              injection_overhead=self.injection_overhead,
                              staging_threshold=self.staging_threshold)


@dataclass(frozen=True)
class HostConfig:
    """Host-side runtime processing costs (single worker thread)."""

    #: Worker-thread *occupancy* to process one device command [s].  The
    #: worker loop is pipelined, so this bounds command throughput
    #: (~1/command_cost per second) rather than adding full latency.
    command_cost: float = 0.12e-6
    #: Expected delay until the polling worker thread notices a new
    #: command-queue entry [s] (pure latency, no occupancy).
    poll_latency: float = 3.4e-6
    #: Event-handler occupancy to dispatch one incoming meta message [s].
    dispatch_cost: float = 0.12e-6
    #: Block-manager occupancy to post/complete one MPI request [s].
    request_cost: float = 0.18e-6
    #: Host-side two-sided MPI per-message software overhead [s]
    #: (matching, protocol) — used by the MPI substrate itself.
    mpi_overhead: float = 0.7e-6

    def __post_init__(self) -> None:
        _require_non_negative(self, command_cost=self.command_cost,
                              poll_latency=self.poll_latency,
                              dispatch_cost=self.dispatch_cost,
                              request_cost=self.request_cost,
                              mpi_overhead=self.mpi_overhead)


@dataclass(frozen=True)
class DeviceLibConfig:
    """Device-side dCUDA library costs (§III-C)."""

    #: Cost for a rank to assemble + enqueue a put/get command [s]
    #: (meta-information tuple assembly, excluding the PCIe transaction).
    command_assembly: float = 0.55e-6
    #: Base cost of one notification-matching pass [s] — the eight-thread
    #: coalesced read + shuffle reduction described in §III-C.  Charged on
    #: the SM issue unit, which is why matching eats into compute overlap
    #: (the paper's explanation for the imperfect overlap in Fig. 7).
    match_base: float = 0.3e-6
    #: Additional matching cost per queue entry scanned [s].
    match_per_entry: float = 0.05e-6
    #: Device-side polling granularity while waiting on notifications [s];
    #: waits complete on the next poll boundary after arrival.
    poll_interval: float = 0.3e-6
    #: Entries per device↔host queue (command/ack/notification).
    queue_size: int = 64
    #: Entry payload size [B]; one queue entry = one PCIe vector write.
    queue_entry_bytes: int = 16

    def __post_init__(self) -> None:
        # poll_interval must be strictly positive: a zero-granularity
        # poller would spin forever at one simulated instant.
        _require_positive(self, poll_interval=self.poll_interval,
                          queue_size=self.queue_size,
                          queue_entry_bytes=self.queue_entry_bytes)
        _require_non_negative(self, command_assembly=self.command_assembly,
                              match_base=self.match_base,
                              match_per_entry=self.match_per_entry)


@dataclass(frozen=True)
class MPICUDAConfig:
    """Baseline programming-model parameters."""

    #: Host-side cost to initiate a cudaMemcpy [s].
    memcpy_call: float = 1.5e-6
    #: Host-side synchronization cost per kernel launch (stream/device
    #: synchronize at the fork-join boundary) [s].
    sync_latency: float = 6.0e-6
    #: Host-side per-iteration loop overhead [s].
    loop_overhead: float = 1.0e-6

    def __post_init__(self) -> None:
        _require_non_negative(self, memcpy_call=self.memcpy_call,
                              sync_latency=self.sync_latency,
                              loop_overhead=self.loop_overhead)


@dataclass(frozen=True)
class DeviceCommConfig:
    """Cost model for the device-initiated (symmetric-heap) backend.

    Ranks issue RMA straight from the GPU: the SM issue unit pays an
    IOMMU/ATS address translation plus the MMIO doorbell ring, and the
    NIC picks the descriptor up without any host involvement — there is
    no block-manager dequeue, no ``poll_latency``, no per-command host
    occupancy.  Calibrated loosely to published GPU-NIC doorbell
    latencies (NVSHMEM-class IBGDA initiation).
    """

    #: SM-issue occupancy of the MMIO doorbell write to the NIC [s].
    doorbell_cost: float = 0.8e-6
    #: IOMMU/ATS address-translation charge per RMA initiation [s].
    translation_cost: float = 0.3e-6
    #: Device-side completion handling (CQE poll + flush retire) [s].
    completion_cost: float = 0.2e-6
    #: Wire size of a get request descriptor [B].
    request_bytes: float = 64.0

    def __post_init__(self) -> None:
        _require_positive(self, request_bytes=self.request_bytes)
        _require_non_negative(self, doorbell_cost=self.doorbell_cost,
                              translation_cost=self.translation_cost,
                              completion_cost=self.completion_cost)


@dataclass(frozen=True)
class StreamCommConfig:
    """Cost model for the stream-triggered (deferred-op) backend.

    The device enqueues a triggered-op descriptor on a per-rank stream
    (one cheap SM charge plus one posted PCIe write of the trigger), and
    the fabric's triggered-op engine fires the operation once the
    trigger commits — ordering is the stream's FIFO order, and the
    firing latency is paid off the rank's critical path.
    """

    #: SM-issue occupancy to assemble + enqueue one descriptor [s].
    enqueue_cost: float = 0.25e-6
    #: Delay between the trigger commit and the engine firing the op [s].
    trigger_latency: float = 1.2e-6
    #: Engine-side completion handling per retired op [s].
    completion_cost: float = 0.4e-6
    #: Wire size of a get request descriptor [B].
    request_bytes: float = 64.0

    def __post_init__(self) -> None:
        _require_positive(self, request_bytes=self.request_bytes)
        _require_non_negative(self, enqueue_cost=self.enqueue_cost,
                              trigger_latency=self.trigger_latency,
                              completion_cost=self.completion_cost)


@dataclass(frozen=True)
class MachineConfig:
    """A full machine description.

    Without a :attr:`topology`, this is the paper's shape —
    :attr:`num_nodes` identical single-GPU nodes on a flat
    full-bisection fabric.  With one, the topology declares the node
    classes (GPU counts, per-class overrides, intra-node links) and the
    interconnect (``flat`` / ``fat_tree`` / ``ring``), and the top-level
    :attr:`gpu` / :attr:`pcie` / :attr:`fabric` values become the
    defaults node classes inherit.
    """

    num_nodes: int = 1
    gpu: GPUConfig = field(default_factory=GPUConfig)
    pcie: PCIeConfig = field(default_factory=PCIeConfig)
    fabric: FabricConfig = field(default_factory=FabricConfig)
    host: HostConfig = field(default_factory=HostConfig)
    devicelib: DeviceLibConfig = field(default_factory=DeviceLibConfig)
    mpicuda: MPICUDAConfig = field(default_factory=MPICUDAConfig)
    #: Record per-block activity intervals (compute/comm/wait).
    tracing: bool = False
    #: Observability layer (metrics registry + trace export); default off.
    #: :func:`repro.obs.force_enabled` flips the default inside a block.
    obs: ObsConfig = field(default_factory=default_obs)
    #: Fault-injection plane + runtime hardening; ``None`` (the default)
    #: means the plane is never built and the stack runs its unperturbed
    #: fast paths.  :func:`repro.faults.force_faults` flips the default.
    faults: Optional[FaultsConfig] = field(default_factory=default_faults)
    #: Declarative machine shape (:mod:`repro.platform`); ``None`` means
    #: ``num_nodes`` identical single-GPU nodes on a flat fabric — the
    #: legacy model, bit-identical to the pre-platform simulator.
    topology: Optional[Topology] = None
    #: Rank → (node, GPU) policy; the default ``block`` policy over
    #: single-GPU nodes reproduces the legacy ``rank // ranks_per_device``
    #: numbering exactly.
    placement: PlacementSpec = field(default_factory=PlacementSpec)
    #: Communication backend — where RMA operations initiate (see
    #: :mod:`repro.comm`).  ``"proxy"`` (default) is the paper's host
    #: block-manager path and is schedule-preserving; ``"device"`` and
    #: ``"stream"`` move initiation onto the GPU / onto a triggered-op
    #: stream with their own cost models.
    comm_backend: str = "proxy"
    #: Cost model consumed when :attr:`comm_backend` is ``"device"``.
    device_comm: DeviceCommConfig = field(default_factory=DeviceCommConfig)
    #: Cost model consumed when :attr:`comm_backend` is ``"stream"``.
    stream_comm: StreamCommConfig = field(default_factory=StreamCommConfig)

    def __post_init__(self) -> None:
        if not isinstance(self.num_nodes, int) or self.num_nodes < 1:
            raise DCudaUsageError(
                f"MachineConfig.num_nodes must be a positive int, got "
                f"{self.num_nodes!r}")
        if self.topology is not None and not isinstance(self.topology,
                                                        Topology):
            raise DCudaUsageError(
                f"MachineConfig.topology must be a Topology or None, got "
                f"{type(self.topology).__name__}")
        if not isinstance(self.placement, PlacementSpec):
            raise DCudaUsageError(
                f"MachineConfig.placement must be a PlacementSpec, got "
                f"{type(self.placement).__name__}")
        if self.comm_backend not in COMM_BACKENDS:
            raise DCudaUsageError(
                f"MachineConfig.comm_backend must be one of "
                f"{COMM_BACKENDS}, got {self.comm_backend!r}")
        if not isinstance(self.device_comm, DeviceCommConfig):
            raise DCudaUsageError(
                f"MachineConfig.device_comm must be a DeviceCommConfig, "
                f"got {type(self.device_comm).__name__}")
        if not isinstance(self.stream_comm, StreamCommConfig):
            raise DCudaUsageError(
                f"MachineConfig.stream_comm must be a StreamCommConfig, "
                f"got {type(self.stream_comm).__name__}")

    def with_nodes(self, num_nodes: int) -> "MachineConfig":
        """Copy of this config with a different node count.

        On a topology config with a single node class, the class count is
        rewritten; multi-class topologies are ambiguous and must be
        rebuilt explicitly.
        """
        if num_nodes < 1:
            raise DCudaUsageError(
                f"num_nodes must be >= 1, got {num_nodes}")
        if self.topology is None:
            return replace(self, num_nodes=num_nodes)
        if len(self.topology.node_classes) != 1:
            raise DCudaUsageError(
                "with_nodes is ambiguous on a multi-class topology; "
                "rebuild the Topology with the desired class counts")
        nc = self.topology.node_classes[0]
        topo = replace(self.topology,
                       node_classes=(replace(nc, count=num_nodes),))
        return replace(self, num_nodes=1, topology=topo)


def greina(num_nodes: int = 1, **overrides) -> MachineConfig:
    """The calibrated test-system preset (Greina @ CSCS, §IV-A).

    Keyword overrides replace top-level :class:`MachineConfig` fields,
    e.g. ``greina(8, tracing=True)`` or
    ``greina(topology=ring(8), placement=PlacementSpec("round_robin"))``.
    """
    return replace(MachineConfig(num_nodes=num_nodes), **overrides)
