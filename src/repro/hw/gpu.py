"""GPU device model: SMs, resident blocks, and latency hiding.

The latency-hiding mechanism the whole paper rests on is reproduced
structurally rather than numerically:

* Each SM owns a single *issue unit* (an FCFS :class:`~repro.sim.Resource`).
  A block's compute phase occupies the issue unit only for its ALU time;
  its memory traffic streams in the background through the device-wide
  fair-share memory link.
* A block that *waits* (for notifications, queue credits, transfers) holds
  **no** resource, so co-resident blocks immediately use the issue unit —
  over-subscription turns waiting time into other blocks' compute time,
  which is precisely the "hardware supported overlap" of the title.
* Blocks cannot be preempted and the device cannot run more blocks than it
  has resident slots, so :meth:`Device.allocate_blocks` enforces the paper's
  rule that over-subscription is limited to the blocks in flight at once
  (otherwise collectives could deadlock, §III-A).
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from ..sim import PENDING, Environment, Event, Resource, Tracer
from .config import GPUConfig
from .memory import DeviceMemory

__all__ = ["SM", "Block", "Device"]


class SM:
    """One streaming multiprocessor: an issue unit plus resident slots."""

    def __init__(self, env: Environment, cfg: GPUConfig, index: int,
                 device_name: str):
        self.env = env
        self.cfg = cfg
        self.index = index
        self.name = f"{device_name}.sm{index}"
        self.issue = Resource(env, capacity=1, name=f"issue:{self.name}")
        self.resident: List["Block"] = []

    @property
    def free_slots(self) -> int:
        return self.cfg.max_blocks_per_sm - len(self.resident)


class Block:
    """A resident block — the dCUDA *rank* execution vehicle."""

    __slots__ = ("device", "sm", "index", "name")

    def __init__(self, device: "Device", sm: SM, index: int):
        self.device = device
        self.sm = sm
        self.index = index
        self.name = f"{device.name}.b{index}"

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<Block {self.name} on {self.sm.name}>"


class Device:
    """A compute device: SMs + shared device memory.

    Time-charging entry points (all generators for ``yield from``):

    * :meth:`compute` — a compute phase of given FLOPs and memory traffic,
    * :meth:`copy` — a block-performed device-memory copy,
    * :meth:`issue_use` — occupy the block's issue unit (used by the
      device-side library for notification matching, which is *compute
      heavy* and therefore steals issue slots from application compute),
    * :meth:`wait` — trace-annotated wait on an event (holds nothing).
    """

    def __init__(self, env: Environment, cfg: GPUConfig, name: str = "gpu0",
                 tracer: Optional[Tracer] = None, obs: Any = None,
                 faults: Any = None):
        self.env = env
        self.cfg = cfg
        self.name = name
        self.tracer = tracer or Tracer(enabled=False)
        self.memory = DeviceMemory(env, cfg, name=f"{name}.mem", obs=obs,
                                   faults=faults)
        self.sms = [SM(env, cfg, i, name) for i in range(cfg.num_sms)]
        self._blocks: List[Block] = []
        # Fault plane or None; queried per compute phase for block stalls.
        self._faults = faults
        #: RMA operations initiated from this device (device-initiated
        #: communication backends only; the proxy path goes through the
        #: PCIe command queues and never touches this counter).
        self.rma_initiations = 0

    # -- block management ---------------------------------------------------
    @property
    def blocks(self) -> List[Block]:
        return list(self._blocks)

    def allocate_blocks(self, count: int) -> List[Block]:
        """Place *count* blocks round-robin over the SMs.

        Raises ``ValueError`` when the request exceeds the device's
        in-flight capacity — the dCUDA rank-count cap.
        """
        if count < 1:
            raise ValueError(f"block count must be >= 1, got {count}")
        if len(self._blocks) + count > self.cfg.max_blocks:
            raise ValueError(
                f"{self.name}: {len(self._blocks) + count} blocks exceed the "
                f"in-flight limit of {self.cfg.max_blocks} "
                f"({self.cfg.num_sms} SMs x {self.cfg.max_blocks_per_sm}); "
                "dCUDA requires all ranks resident at once")
        new_blocks = []
        for _ in range(count):
            sm = min(self.sms, key=lambda s: (len(s.resident), s.index))
            block = Block(self, sm, len(self._blocks))
            sm.resident.append(block)
            self._blocks.append(block)
            new_blocks.append(block)
        return new_blocks

    def free_blocks(self) -> None:
        """Release all blocks (end of a fork-join kernel)."""
        for sm in self.sms:
            sm.resident.clear()
        self._blocks.clear()

    # -- time charging --------------------------------------------------------
    def alu_time(self, flops: float) -> float:
        return flops / self.cfg.flops_per_sm

    def compute(self, block: Block, flops: float = 0.0,
                mem_bytes: float = 0.0,
                detail: str = "") -> Generator[Event, Any, None]:
        """One compute phase of *block*.

        The issue unit is held for the ALU time while the phase's memory
        traffic streams concurrently; the phase ends when both are done.
        Co-resident blocks' phases serialize on the issue unit but their
        memory stalls overlap — the hardware-threading model.
        """
        if flops < 0 or mem_bytes < 0:
            raise ValueError("flops and mem_bytes must be non-negative")
        t0 = self.env._now
        # Inlined issue-unit acquire (Resource -> Semaphore, two delegated
        # frames): compute phases are the hottest device-side generator,
        # and every resume of this frame pays the full delegation depth.
        sem = block.sm.issue._sem
        if sem._available > 0 and not sem._queue:
            sem._available -= 1
            yield 0.0
        else:
            free = sem._efree
            if free:
                ev = free.pop()
                ev.callbacks = []
                ev._value = PENDING
                ev._scheduled = False
            else:
                ev = Event(sem.env, sem._req_name)
            sem._queue.append(ev)
            yield ev
            free.append(ev)
        try:
            mem_ev = None
            if mem_bytes > 0:
                mem_ev = self.memory.access_event(mem_bytes,
                                                  block_limited=True)
            # Issue time: ALU instructions plus load/store issue slots.
            # The LSU term staggers co-resident memory-bound blocks without
            # throttling aggregate bandwidth (see GPUConfig).
            issue_time = (self.alu_time(flops)
                          + mem_bytes / self.cfg.sm_lsu_bandwidth)
            if self._faults is not None:
                # A stalled block holds its issue unit longer, so the
                # slowdown also delays co-resident ranks on the same SM.
                issue_time *= self._faults.block_stall_factor(
                    block.name, self.env._now)
            if issue_time > 0:
                yield issue_time
        finally:
            sem.release()
        if mem_ev is not None:
            yield mem_ev
        tracer = self.tracer
        if tracer.enabled:
            tracer.record(block.name, "compute", t0, self.env._now, detail)

    def copy(self, block: Block, nbytes: float,
             detail: str = "copy") -> Generator[Event, Any, None]:
        """A device-memory copy performed by *block* (read + write traffic).

        Capped by the single-block streaming bandwidth — the mechanism
        behind the "low" shared-memory put bandwidth of Fig. 6.
        """
        if nbytes < 0:
            raise ValueError(f"negative copy size {nbytes!r}")
        t0 = self.env._now
        yield self.memory.access_event(2.0 * nbytes, block_limited=True)
        tracer = self.tracer
        if tracer.enabled:
            tracer.record(block.name, "comm", t0, self.env._now, detail)

    def issue_use(self, block: Block, duration: float,
                  kind: str = "match",
                  detail: str = "") -> Generator[Event, Any, None]:
        """Occupy *block*'s SM issue unit for *duration* (e.g. matching)."""
        if not self.tracer.enabled:
            # Nothing to record: delegate the resource hold directly.
            return block.sm.issue.use(duration)
        return self._issue_use_traced(block, duration, kind, detail)

    def _issue_use_traced(self, block: Block, duration: float,
                          kind: str, detail: str
                          ) -> Generator[Event, Any, None]:
        t0 = self.env._now
        yield from block.sm.issue.use(duration)
        self.tracer.record(block.name, kind, t0, self.env._now, detail)

    def initiate_rma(self, block: Block, duration: float,
                     detail: str = "rma") -> Generator[Event, Any, None]:
        """Device-initiated RMA issue: occupy *block*'s issue unit for the
        address translation + NIC doorbell work and count the initiation.

        The SM charge is the crux of the device-initiated cost model:
        initiation competes with application compute for issue slots, the
        same mechanism that makes notification matching "compute heavy".
        """
        self.rma_initiations += 1
        return self.issue_use(block, duration, kind="comm", detail=detail)

    def wait(self, block: Block, event: Event,
             detail: str = "") -> Generator[Event, Any, Any]:
        """Wait on *event* holding no resources; traced as 'wait'."""
        t0 = self.env._now
        value = yield event
        self.tracer.record(block.name, "wait", t0, self.env._now, detail)
        return value

    def activity_rollup(self) -> dict:
        """Per-block busy-time rollups from the recorded trace intervals.

        Returns ``{block name: {kind: union busy time}}`` for the
        compute/comm/wait/match interval kinds — the per-rank activity
        breakdown the observability report aggregates (overlapping
        intervals of one kind count once).  Empty when tracing is off.
        """
        if not self.tracer.enabled:
            return {}
        return {
            block.name: {kind: self.tracer.busy_time(kind=kind,
                                                     actor=block.name)
                         for kind in ("compute", "comm", "wait", "match")}
            for block in self._blocks
        }

    def bulk_compute(self, nblocks: int = 0, flops_per_block: float = 0.0,
                     mem_bytes_per_block: float = 0.0,
                     per_block: Optional[List[tuple]] = None,
                     detail: str = "kernel") -> Generator[Event, Any, None]:
        """Fork-join execution of an *nblocks*-block kernel.

        Used by the MPI-CUDA baseline: blocks are distributed round-robin
        over the SMs; per SM the block ALU times serialize on the issue
        unit while the memory traffic of all its blocks streams through the
        shared device link (no single-block floor — co-resident blocks keep
        many accesses outstanding).  Returns when the slowest SM finishes.
        Unlike :meth:`allocate_blocks`, there is no in-flight cap: excess
        blocks simply execute in later waves, which the serialization on
        the issue unit models implicitly.

        *per_block*, a list of ``(flops, mem_bytes)`` per block, expresses
        non-uniform kernels (straggler blocks gate the fork-join — how an
        imbalanced particle distribution hurts the baseline too); it
        overrides the uniform parameters.
        """
        if per_block is not None:
            works = [(float(f), float(m)) for f, m in per_block]
        else:
            if nblocks < 1:
                raise ValueError(f"nblocks must be >= 1, got {nblocks}")
            works = [(flops_per_block, mem_bytes_per_block)] * nblocks
        if not works:
            raise ValueError("kernel needs at least one block")
        if any(f < 0 or m < 0 for f, m in works):
            raise ValueError("per-block work must be non-negative")
        t0 = self.env._now
        # Round-robin block-to-SM assignment, as the hardware does.
        shares: List[List[tuple]] = [[] for _ in self.sms]
        for i, work in enumerate(works):
            shares[i % len(self.sms)].append(work)

        def _sm_share(sm: SM, blocks: List[tuple]):
            sum_flops = sum(f for f, _ in blocks)
            sum_mem = sum(m for _, m in blocks)
            yield from sm.issue.acquire()
            try:
                mem_ev = None
                if sum_mem > 0:
                    mem_ev = self.memory.access_event(sum_mem,
                                                      block_limited=False)
                alu = self.alu_time(sum_flops)
                if alu > 0:
                    yield alu
            finally:
                sm.issue.release()
            if mem_ev is not None:
                yield mem_ev

        procs = [self.env.process(_sm_share(sm, blocks),
                                  name=f"kern:{sm.name}")
                 for sm, blocks in zip(self.sms, shares) if blocks]
        from ..sim import AllOf
        yield AllOf(self.env, procs)
        self.tracer.record(f"{self.name}.kernel", "compute", t0,
                           self.env._now, detail)
