"""Hardware models: GPU, memory, PCIe, node, cluster, and configuration."""

from .config import (
    COMM_BACKENDS,
    DeviceCommConfig,
    DeviceLibConfig,
    FabricConfig,
    GPUConfig,
    HostConfig,
    MachineConfig,
    MPICUDAConfig,
    PCIeConfig,
    StreamCommConfig,
    greina,
)
from .memory import DeviceMemory
from .gpu import SM, Block, Device
from .pcie import PCIeLink
from .node import Node
from .cluster import Cluster

__all__ = [
    "COMM_BACKENDS", "DeviceCommConfig", "DeviceLibConfig", "FabricConfig",
    "GPUConfig", "HostConfig", "MachineConfig", "MPICUDAConfig",
    "PCIeConfig", "StreamCommConfig", "greina",
    "DeviceMemory", "SM", "Block", "Device", "PCIeLink", "Node", "Cluster",
]
