"""The dCUDA runtime system: per-node instances connected via MPI (§III-A).

Each node runs one :class:`RuntimeSystem` — an event handler plus one block
manager per local rank — and the :class:`DCudaRuntime` ties the per-node
instances together (rank↔node mapping, transfer-id allocation, logging).

Where each rank lives is the platform's decision: the runtime consumes the
resolved :class:`~repro.platform.placement.Placement` (world rank →
``(node, GPU)``), allocates blocks per GPU, and numbers device
communicators per GPU.  The default ``block`` policy over single-GPU
nodes reproduces the legacy ``rank // ranks_per_device`` numbering — and
the legacy event schedule — exactly.

Global synchronization (barrier, window creation, finish) uses a flat tree
over the runtime instances: when all of a node's local participants arrived,
the node reports to the coordinator (the first rank-hosting node); the
coordinator releases everyone once every participating node reported.  At
the paper's scale (≤ 10 nodes) this matches the cost shape of the real
implementation's MPI coordination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Tuple, Union

import numpy as np

from ..hw.cluster import Cluster
from ..hw.config import MachineConfig
from ..mpi import MPIWorld
from ..sim import Environment, Event, Signal
from .block_manager import BlockManager
from .commands import LogCommand, WinCreateCommand, WinFreeCommand
from .meta import (
    CTRL_BYTES,
    CtrlArrive,
    CtrlRelease,
    GetMeta,
    PutMeta,
    RT_TAG_META,
)
from .state import RankState

__all__ = ["DCudaRuntime", "RuntimeSystem", "WindowId"]

WindowId = Tuple[str, int]


@dataclass
class _CollectiveState:
    arrivals: int = 0
    epoch: int = 0
    signal: Signal = None  # type: ignore[assignment]


class RuntimeSystem:
    """One node's runtime instance: event handler + block managers."""

    def __init__(self, runtime: "DCudaRuntime", node_index: int):
        self.runtime = runtime
        self.env: Environment = runtime.env
        self.node = runtime.cluster.node(node_index)
        self.cfg = runtime.cfg
        placement = runtime.placement
        self.states: List[RankState] = []
        self.block_managers: List[BlockManager] = []
        # Local communicator sizes: "world" counts every rank this node
        # hosts; each populated GPU contributes its device communicator.
        self._local_counts: Dict[str, int] = {}
        for g in range(self.node.gpus_per_node):
            ranks = placement.ranks_on_device(node_index, g)
            if not ranks:
                continue
            self._local_counts[runtime.device_comm_name(node_index, g)] = \
                len(ranks)
            blocks = self.node.gpu(g).allocate_blocks(len(ranks))
            for local, world_rank in enumerate(ranks):
                state = RankState(self.env, self.node, world_rank, local,
                                  blocks[local],
                                  queue_size=self.cfg.devicelib.queue_size,
                                  gpu_index=g)
                self.states.append(state)
                self.block_managers.append(BlockManager(self, state))
        self._local_counts["world"] = len(self.states)
        self._index_of = {state.world_rank: i
                          for i, state in enumerate(self.states)}
        # Host-side window registry: global id -> {world rank: buffer}.
        self.windows: Dict[WindowId, Dict[int, np.ndarray]] = {}
        # Lazy cache of (base pointer, element stride, itemsize) per
        # registration — the registry holds a reference to each buffer, so
        # its base address is stable for the registration's lifetime.
        self._win_layout: Dict[Tuple[WindowId, int],
                               Tuple[int, int, int]] = {}
        self._coll: Dict[Tuple[str, str], _CollectiveState] = {}
        # Flat-tree synchronization state (coordinator side only).
        self._sync_counts: Dict[Any, int] = {}
        self._sync_events: Dict[Any, Event] = {}
        self._started = False

    # -- local rank lookup ----------------------------------------------
    def state_of(self, world_rank: int) -> RankState:
        return self.states[self._index_of[world_rank]]

    def bm_of(self, world_rank: int) -> BlockManager:
        return self.block_managers[self._index_of[world_rank]]

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        if self._started:
            raise RuntimeError(f"runtime on node {self.node.index} already "
                               "started")
        self._started = True
        for bm in self.block_managers:
            self.env.process(bm.run(), name=f"bm:r{bm.state.world_rank}")
            self.env.process(self._log_collector(bm.state),
                             name=f"log:r{bm.state.world_rank}")
        self.env.process(self._event_handler(),
                         name=f"eh:n{self.node.index}")

    # -- event handler ------------------------------------------------------
    def _event_handler(self) -> Generator[Event, Any, None]:
        """Pre-posted receives dispatching incoming runtime messages."""
        world = self.runtime.world
        while True:
            msg = yield from world.recv(self.node.index, tag=RT_TAG_META)
            yield from self.node.host_work(self.cfg.host.dispatch_cost)
            payload = msg.payload
            if isinstance(payload, PutMeta):
                bm = self.runtime.bm_of(payload.target_rank)
                self.env.process(bm.incoming_put(payload),
                                 name=f"input:r{payload.target_rank}")
            elif isinstance(payload, GetMeta):
                bm = self.runtime.bm_of(payload.target_rank)
                self.env.process(bm.incoming_get(payload),
                                 name=f"inget:r{payload.target_rank}")
            elif isinstance(payload, CtrlArrive):
                self._note_arrival(payload.key)
            elif isinstance(payload, CtrlRelease):
                self._sync_events.pop(payload.key).succeed()
            else:
                raise TypeError(f"unexpected runtime message {payload!r}")

    def _log_collector(self, state: RankState) -> Generator[Event, Any, None]:
        while True:
            cmd = yield from state.log_queue.dequeue()
            assert isinstance(cmd, LogCommand)
            self.runtime.log_records.append(
                (self.env.now, cmd.origin_rank, cmd.message))

    # -- flat-tree global synchronization ------------------------------------
    def _note_arrival(self, key: Any) -> None:
        """Coordinator: count node arrivals, release when full.

        The coordinator is the first *participating* node — a node the
        placement left empty never coordinates (nor arrives).
        """
        participating = self.runtime.participating_nodes
        assert self.node.index == participating[0]
        count = self._sync_counts.get(key, 0) + 1
        if count < len(participating):
            self._sync_counts[key] = count
            return
        self._sync_counts.pop(key, None)
        world = self.runtime.world
        for node in participating:
            if node == self.node.index:
                continue
            world.isend(self.node.index, node, CtrlRelease(key),
                        tag=RT_TAG_META, nbytes=CTRL_BYTES)
        self._sync_events.pop(key).succeed()

    def _global_sync(self, key: Any) -> Generator[Event, Any, None]:
        """Block until every participating node reached sync point *key*."""
        participating = self.runtime.participating_nodes
        if len(participating) == 1:
            return
        ev = self.env.event(name=f"sync:{key}")
        self._sync_events[key] = ev
        if self.node.index == participating[0]:
            self._note_arrival(key)
        else:
            self.runtime.world.isend(self.node.index, participating[0],
                                     CtrlArrive(key, self.node.index),
                                     tag=RT_TAG_META, nbytes=CTRL_BYTES)
        yield ev

    # -- node-local collective gating ------------------------------------------
    def _participants(self, comm_name: str) -> int:
        """Local participants of a communicator (world or a local device)."""
        count = self._local_counts.get(comm_name)
        if count is None:
            raise ValueError(f"unknown communicator {comm_name!r} on node "
                             f"{self.node.index}")
        return count

    def collective_arrive(self, family: str,
                          comm_name: str) -> Generator[Event, Any, int]:
        """One rank's arrival at a collective; returns the epoch index.

        The last local arrival performs the cross-node synchronization (for
        world-spanning communicators) and then releases the other local
        participants.
        """
        participants = self._participants(comm_name)
        st = self._coll.setdefault(
            (family, comm_name),
            _CollectiveState(signal=Signal(self.env,
                                           name=f"{family}:{comm_name}")))
        my_epoch = st.epoch
        st.arrivals += 1
        if st.arrivals == participants:
            st.arrivals = 0
            st.epoch += 1
            if comm_name == "world":
                yield from self._global_sync((family, comm_name, my_epoch))
            st.signal.fire()
        else:
            yield st.signal.wait()
        return my_epoch

    # -- window registry ---------------------------------------------------------
    def register_window(self, cmd: WinCreateCommand
                        ) -> Generator[Event, Any, WindowId]:
        """Collective window creation; returns the globally valid id.

        Global ids are ``(comm name, per-communicator creation index)`` —
        consistent across nodes because window creation is collective and
        therefore globally ordered per communicator.
        """
        st = self._coll.setdefault(
            ("win", cmd.comm_name),
            _CollectiveState(signal=Signal(self.env,
                                           name=f"win:{cmd.comm_name}")))
        gid: WindowId = (cmd.comm_name, st.epoch)
        self.windows.setdefault(gid, {})[cmd.origin_rank] = cmd.buffer
        state = self.runtime.state_of(cmd.origin_rank)
        state.win_reverse[gid] = cmd.local_win_id
        participants = self._participants(cmd.comm_name)
        st.arrivals += 1
        if st.arrivals == participants:
            st.arrivals = 0
            st.epoch += 1
            if cmd.comm_name == "world":
                yield from self._global_sync(("win", cmd.comm_name, gid[1]))
            st.signal.fire()
        else:
            yield st.signal.wait()
        return gid

    def unregister_window(self, cmd: WinFreeCommand
                          ) -> Generator[Event, Any, None]:
        """Collective window free."""
        yield from self.collective_arrive("winfree", cmd.global_win_id[0])
        if self.windows.pop(cmd.global_win_id, None) is not None:
            for key in [k for k in self._win_layout
                        if k[0] == cmd.global_win_id]:
                del self._win_layout[key]

    def window_buffer(self, gid: WindowId, world_rank: int) -> np.ndarray:
        try:
            return self.windows[gid][world_rank]
        except KeyError:
            raise KeyError(
                f"window {gid} has no registration for rank {world_rank} on "
                f"node {self.node.index}") from None

    def window_layout(self, gid: WindowId,
                      world_rank: int) -> Tuple[int, int, int]:
        """``(base pointer, element stride in bytes, itemsize)`` of a
        registration — cached, so the RMA hot path's aliasing test costs
        one pointer construction instead of two plus a slice.

        A stride of 0 means the buffer is not a 1-D strided array and the
        caller must fall back to the generic :func:`same_memory` test.
        """
        key = (gid, world_rank)
        layout = self._win_layout.get(key)
        if layout is None:
            buf = self.window_buffer(gid, world_rank)
            stride = buf.strides[0] if buf.ndim == 1 else 0
            layout = (buf.ctypes.data, stride, buf.itemsize)
            self._win_layout[key] = layout
        return layout


class DCudaRuntime:
    """All runtime-system instances of the cluster, plus shared services."""

    def __init__(self, cluster: Union[Cluster, MachineConfig],
                 ranks_per_device: int,
                 world: Optional[MPIWorld] = None):
        if isinstance(cluster, MachineConfig):
            # Convenience: a bare machine description is wrapped in a fresh
            # cluster (own environment/clock) so callers can go straight
            # from config to runtime.
            cluster = Cluster(cluster)
        if ranks_per_device < 1:
            raise ValueError(
                f"ranks_per_device must be >= 1, got {ranks_per_device}")
        max_blocks = cluster.cfg.gpu.max_blocks
        if ranks_per_device > max_blocks:
            raise ValueError(
                f"ranks_per_device={ranks_per_device} exceeds the device "
                f"in-flight limit of {max_blocks}")
        self.cluster = cluster
        self.env = cluster.env
        self.cfg = cluster.cfg
        self.world = world if world is not None else MPIWorld(cluster)
        self.ranks_per_device = ranks_per_device
        #: World rank → (node, GPU), resolved by the platform from the
        #: config's placement policy (block/round_robin/explicit).
        self.placement = cluster.platform.place(ranks_per_device)
        self.total_ranks = self.placement.total_ranks
        #: Nodes hosting at least one rank; collectives coordinate over
        #: these, with the first as the flat-tree coordinator.
        self.participating_nodes = self.placement.participating_nodes
        self.log_records: List[Tuple[float, int, str]] = []
        self._xfer_counter = 0
        self.systems = [RuntimeSystem(self, i)
                        for i in range(cluster.num_nodes)]
        # The communication backend owns put/get initiation, notification
        # delivery, and flush retirement (see repro.comm).  Imported
        # lazily: repro.comm pulls in the dcuda device layer, which in
        # turn imports this module.
        from ..comm import build_backend

        #: The configured :class:`~repro.comm.base.CommBackend` instance.
        self.comm = build_backend(self.cfg.comm_backend, self)

    # -- topology ------------------------------------------------------------
    def check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.total_ranks:
            raise ValueError(f"rank {rank} out of range "
                             f"(total {self.total_ranks})")

    def node_of_rank(self, rank: int) -> int:
        self.check_rank(rank)
        return self.placement.node_of(rank)

    def gpu_of_rank(self, rank: int) -> int:
        """Local GPU ordinal hosting *rank* (0 on single-GPU nodes)."""
        self.check_rank(rank)
        return self.placement.gpu_of(rank)

    def device_comm_name(self, node: int, gpu: int) -> str:
        """Name of GPU *gpu*-of-*node*'s device communicator.

        Single-GPU nodes keep the legacy ``device<n>`` name (stable
        communicator keys across the platform refactor); dense nodes
        qualify it per GPU: ``device<n>.g<g>``.
        """
        if self.cluster.platform.node_spec(node).gpus_per_node == 1:
            return f"device{node}"
        return f"device{node}.g{gpu}"

    def system_of(self, rank: int) -> RuntimeSystem:
        return self.systems[self.node_of_rank(rank)]

    def state_of(self, rank: int) -> RankState:
        return self.system_of(rank).state_of(rank)

    def bm_of(self, rank: int) -> BlockManager:
        return self.system_of(rank).bm_of(rank)

    def next_xfer_id(self) -> int:
        self._xfer_counter += 1
        return self._xfer_counter

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        """Launch event handlers, block managers, and backend agents."""
        for system in self.systems:
            system.start()
        self.comm.start()

    # -- invariants ------------------------------------------------------------
    def check_quiescent(self) -> List[str]:
        """Protocol invariants that must hold once all ranks finished.

        Returns a list of violations (empty = clean): every rank finished,
        all queues drained, every issued RMA operation completed (flush
        counter caught up), no window registrations leaked, and no pending
        cross-node synchronizations.  ``launch`` calls this after every
        run, so protocol bugs fail loudly instead of silently dropping
        work.
        """
        problems: List[str] = []
        for system in self.systems:
            for state in system.states:
                r = state.world_rank
                if not state.finished:
                    problems.append(f"rank {r} never finished")
                # Notification queues may legitimately hold entries a
                # program chose not to consume; command/ack/log leftovers
                # are always protocol bugs.
                for name, queue in (("cmd", state.cmd_queue),
                                    ("ack", state.ack_queue),
                                    ("log", state.log_queue)):
                    if queue.occupancy:
                        problems.append(
                            f"rank {r} {name} queue holds "
                            f"{queue.occupancy} undelivered entries")
                issued = state.next_flush_id - 1
                if state.flush_tracker.counter != issued:
                    problems.append(
                        f"rank {r} completed {state.flush_tracker.counter} "
                        f"of {issued} RMA operations")
            if system._sync_counts:
                problems.append(
                    f"node {system.node.index} has pending global syncs: "
                    f"{list(system._sync_counts)}")
            if system._sync_events:
                problems.append(
                    f"node {system.node.index} has unreleased sync events: "
                    f"{list(system._sync_events)}")
        return problems
