"""Device→host command and host→device response encodings.

These are the entries travelling through the circular queues: commands on
the command queue (device library → block manager), acknowledgements on the
ack queue, and notifications on the notification queue (block manager →
device library).  Real entries are fixed-size vector-write payloads; the
classes carry the same fields plus, for simulation convenience, direct
references to the numpy views involved.

The hot entry types (:class:`PutCommand`, :class:`GetCommand`,
:class:`NotifyCommand`, :class:`Ack`, :class:`Notification`) are
handwritten ``__slots__`` flyweights rather than dataclasses: a diffusion
run constructs several thousand of them, and the dataclass-generated
``__init__`` (and, for the previously frozen ``Notification``, its
``object.__setattr__`` guard) costs roughly twice a plain initializer.
They keep dataclass-style value equality and ``repr`` — tests and the
cross-backend differential harness compare notification lists by value.
Cold control-plane entries stay dataclasses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

import numpy as np

__all__ = [
    "WinCreateCommand", "WinFreeCommand", "PutCommand", "GetCommand",
    "NotifyCommand", "BarrierCommand", "FinishCommand", "LogCommand",
    "Ack", "Notification",
]


@dataclass(slots=True)
class WinCreateCommand:
    """Collective window creation: the rank registers a local memory range."""

    origin_rank: int
    local_win_id: int
    comm_name: str
    buffer: np.ndarray          # the rank's registered memory range
    participants: Tuple[int, ...]


@dataclass(slots=True)
class WinFreeCommand:
    origin_rank: int
    global_win_id: int


class PutCommand:
    """Notified put to a *distributed-memory* rank (Fig. 5 control flow).

    ``src`` references origin device memory; the block manager reads it when
    the MPI send is issued, exactly as the real block manager isends straight
    out of device memory.
    """

    __slots__ = ("origin_rank", "global_win_id", "target_rank",
                 "target_offset", "count", "src", "tag", "flush_id",
                 "notify")

    def __init__(self, origin_rank: int, global_win_id: int,
                 target_rank: int, target_offset: int, count: int,
                 src: np.ndarray, tag: int, flush_id: int,
                 notify: bool = True):
        self.origin_rank = origin_rank
        self.global_win_id = global_win_id
        self.target_rank = target_rank
        self.target_offset = target_offset
        self.count = count
        self.src = src
        self.tag = tag
        self.flush_id = flush_id
        self.notify = notify

    def __repr__(self) -> str:
        return (f"PutCommand(origin_rank={self.origin_rank!r}, "
                f"global_win_id={self.global_win_id!r}, "
                f"target_rank={self.target_rank!r}, "
                f"target_offset={self.target_offset!r}, "
                f"count={self.count!r}, src={self.src!r}, "
                f"tag={self.tag!r}, flush_id={self.flush_id!r}, "
                f"notify={self.notify!r})")


class GetCommand:
    """Notified get from a remote window into origin device memory."""

    __slots__ = ("origin_rank", "global_win_id", "target_rank",
                 "target_offset", "count", "dst", "tag", "flush_id",
                 "notify")

    def __init__(self, origin_rank: int, global_win_id: int,
                 target_rank: int, target_offset: int, count: int,
                 dst: np.ndarray, tag: int, flush_id: int,
                 notify: bool = True):
        self.origin_rank = origin_rank
        self.global_win_id = global_win_id
        self.target_rank = target_rank
        self.target_offset = target_offset
        self.count = count
        self.dst = dst
        self.tag = tag
        self.flush_id = flush_id
        self.notify = notify

    def __repr__(self) -> str:
        return (f"GetCommand(origin_rank={self.origin_rank!r}, "
                f"global_win_id={self.global_win_id!r}, "
                f"target_rank={self.target_rank!r}, "
                f"target_offset={self.target_offset!r}, "
                f"count={self.count!r}, dst={self.dst!r}, "
                f"tag={self.tag!r}, flush_id={self.flush_id!r}, "
                f"notify={self.notify!r})")


class NotifyCommand:
    """Shared-memory RMA already performed on-device; deliver the target
    notification (and the flush update) through the host."""

    __slots__ = ("origin_rank", "global_win_id", "target_rank", "tag",
                 "flush_id", "notify")

    def __init__(self, origin_rank: int, global_win_id: int,
                 target_rank: int, tag: int, flush_id: int,
                 notify: bool = True):
        self.origin_rank = origin_rank
        self.global_win_id = global_win_id
        self.target_rank = target_rank
        self.tag = tag
        self.flush_id = flush_id
        self.notify = notify

    def __eq__(self, other: Any) -> Any:
        if other.__class__ is not NotifyCommand:
            return NotImplemented
        return (self.origin_rank == other.origin_rank
                and self.global_win_id == other.global_win_id
                and self.target_rank == other.target_rank
                and self.tag == other.tag
                and self.flush_id == other.flush_id
                and self.notify == other.notify)

    def __repr__(self) -> str:
        return (f"NotifyCommand(origin_rank={self.origin_rank!r}, "
                f"global_win_id={self.global_win_id!r}, "
                f"target_rank={self.target_rank!r}, tag={self.tag!r}, "
                f"flush_id={self.flush_id!r}, notify={self.notify!r})")


@dataclass(slots=True)
class BarrierCommand:
    origin_rank: int
    comm_name: str


#: Pseudo window id used by collective-completion notifications.
COLLECTIVE_WIN = -2


@dataclass(slots=True)
class NonblockingBarrierCommand:
    """§V extension: a barrier that completes in the background and posts a
    notification (win id ``COLLECTIVE_WIN``) instead of an ack."""

    origin_rank: int
    comm_name: str
    tag: int


@dataclass(slots=True)
class FinishCommand:
    origin_rank: int


@dataclass(slots=True)
class LogCommand:
    origin_rank: int
    message: str


class Ack:
    """Host→device acknowledgement for a completed command."""

    __slots__ = ("kind", "value")

    def __init__(self, kind: str, value: Any = None):
        self.kind = kind               # "win_create" | "win_free" | ...
        self.value = value

    def __eq__(self, other: Any) -> Any:
        if other.__class__ is not Ack:
            return NotImplemented
        return self.kind == other.kind and self.value == other.value

    def __repr__(self) -> str:
        return f"Ack(kind={self.kind!r}, value={self.value!r})"


class Notification:
    """One notification-queue entry: (window, source rank, tag).

    Value-compared and hashable like the frozen dataclass it replaces
    (matcher-parity and differential tests compare notification lists);
    the frozen write guard is dropped for construction speed — treat
    instances as immutable.
    """

    __slots__ = ("win_id", "source", "tag")

    def __init__(self, win_id: int, source: int, tag: int):
        self.win_id = win_id
        self.source = source
        self.tag = tag

    def __eq__(self, other: Any) -> Any:
        if other.__class__ is not Notification:
            return NotImplemented
        return (self.win_id == other.win_id and self.source == other.source
                and self.tag == other.tag)

    def __hash__(self) -> int:
        return hash((self.win_id, self.source, self.tag))

    def __repr__(self) -> str:
        return (f"Notification(win_id={self.win_id!r}, "
                f"source={self.source!r}, tag={self.tag!r})")
