"""Device→host command and host→device response encodings.

These are the entries travelling through the circular queues: commands on
the command queue (device library → block manager), acknowledgements on the
ack queue, and notifications on the notification queue (block manager →
device library).  Real entries are fixed-size vector-write payloads; the
dataclasses carry the same fields plus, for simulation convenience, direct
references to the numpy views involved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

import numpy as np

__all__ = [
    "WinCreateCommand", "WinFreeCommand", "PutCommand", "GetCommand",
    "NotifyCommand", "BarrierCommand", "FinishCommand", "LogCommand",
    "Ack", "Notification",
]


@dataclass(slots=True)
class WinCreateCommand:
    """Collective window creation: the rank registers a local memory range."""

    origin_rank: int
    local_win_id: int
    comm_name: str
    buffer: np.ndarray          # the rank's registered memory range
    participants: Tuple[int, ...]


@dataclass(slots=True)
class WinFreeCommand:
    origin_rank: int
    global_win_id: int


@dataclass(slots=True)
class PutCommand:
    """Notified put to a *distributed-memory* rank (Fig. 5 control flow).

    ``src`` references origin device memory; the block manager reads it when
    the MPI send is issued, exactly as the real block manager isends straight
    out of device memory.
    """

    origin_rank: int
    global_win_id: int
    target_rank: int
    target_offset: int
    count: int
    src: np.ndarray
    tag: int
    flush_id: int
    notify: bool = True


@dataclass(slots=True)
class GetCommand:
    """Notified get from a remote window into origin device memory."""

    origin_rank: int
    global_win_id: int
    target_rank: int
    target_offset: int
    count: int
    dst: np.ndarray
    tag: int
    flush_id: int
    notify: bool = True


@dataclass(slots=True)
class NotifyCommand:
    """Shared-memory RMA already performed on-device; deliver the target
    notification (and the flush update) through the host."""

    origin_rank: int
    global_win_id: int
    target_rank: int
    tag: int
    flush_id: int
    notify: bool = True


@dataclass(slots=True)
class BarrierCommand:
    origin_rank: int
    comm_name: str


#: Pseudo window id used by collective-completion notifications.
COLLECTIVE_WIN = -2


@dataclass(slots=True)
class NonblockingBarrierCommand:
    """§V extension: a barrier that completes in the background and posts a
    notification (win id ``COLLECTIVE_WIN``) instead of an ack."""

    origin_rank: int
    comm_name: str
    tag: int


@dataclass(slots=True)
class FinishCommand:
    origin_rank: int


@dataclass(slots=True)
class LogCommand:
    origin_rank: int
    message: str


@dataclass(slots=True)
class Ack:
    """Host→device acknowledgement for a completed command."""

    kind: str                  # "win_create" | "win_free" | "barrier" | ...
    value: Any = None


@dataclass(frozen=True, slots=True)
class Notification:
    """One notification-queue entry: (window, source rank, tag)."""

    win_id: int
    source: int
    tag: int
