"""Per-rank device↔host shared state.

Each dCUDA rank owns four circular queues (§III-A, Fig. 4) plus the flush
counter the block manager advances as remote-memory-access operations
complete:

* command queue  (device → host, in host memory),
* ack queue      (host → device, in device memory),
* notification queue (host → device, in device memory),
* logging queue  (device → host, in host memory).
"""

from __future__ import annotations

from typing import Dict, Set

from ..hw.gpu import Block
from ..hw.node import Node
from ..sim import Environment, Signal
from .queues import CircularQueue

__all__ = ["RankState", "FlushTracker"]


class FlushTracker:
    """In-order completion tracking for RMA operations (§III-B).

    The block manager keeps a history of processed operations and exposes a
    single counter: the highest flush id whose predecessors have *all*
    completed.  The device-side ``flush`` waits on that counter.
    """

    def __init__(self) -> None:
        self._done: Set[int] = set()
        self.counter = 0

    def complete(self, flush_id: int) -> bool:
        """Mark *flush_id* done; returns True if the counter advanced."""
        if flush_id <= self.counter or flush_id in self._done:
            raise ValueError(f"flush id {flush_id} completed twice")
        self._done.add(flush_id)
        advanced = False
        while self.counter + 1 in self._done:
            self._done.remove(self.counter + 1)
            self.counter += 1
            advanced = True
        return advanced


class RankState:
    """Queues, counters, and identity of one rank."""

    def __init__(self, env: Environment, node: Node, world_rank: int,
                 device_rank: int, block: Block, queue_size: int,
                 gpu_index: int = 0):
        self.env = env
        self.node = node
        self.world_rank = world_rank
        self.device_rank = device_rank
        self.block = block
        #: Local GPU ordinal hosting this rank (0 on single-GPU nodes).
        self.gpu_index = gpu_index
        #: The PCIe port of this rank's GPU — all of the rank's queue
        #: traffic and flush-counter writes cross this port.
        self.pcie = node.pcie_port(gpu_index)
        pcie = self.pcie
        obs = node.obs
        faults = getattr(node, "faults", None)
        self.cmd_queue = CircularQueue(env, queue_size, pcie,
                                       name=f"cmd:r{world_rank}", obs=obs,
                                       faults=faults)
        self.ack_queue = CircularQueue(env, queue_size, pcie,
                                       name=f"ack:r{world_rank}", obs=obs,
                                       faults=faults)
        self.notif_queue = CircularQueue(env, queue_size, pcie,
                                         name=f"ntf:r{world_rank}", obs=obs,
                                         faults=faults)
        self.log_queue = CircularQueue(env, queue_size, pcie,
                                       name=f"log:r{world_rank}", obs=obs,
                                       faults=faults)
        # Device-visible flush counter, mirrored by the block manager.
        self.flush_counter = 0
        self.flush_signal = Signal(env, name=f"flush:r{world_rank}")
        # Host-side completion history.
        self.flush_tracker = FlushTracker()
        # Device-side id allocation.
        self.next_flush_id = 1
        self.next_local_win = 0
        # The block manager's hash map translating device-side window ids
        # to globally valid ids (§III-B), and its inverse for incoming
        # notifications.
        self.win_translation: Dict[int, object] = {}
        self.win_reverse: Dict[object, int] = {}
        self.finished = False

    def allocate_flush_id(self) -> int:
        fid = self.next_flush_id
        self.next_flush_id += 1
        return fid

    def allocate_local_win(self) -> int:
        wid = self.next_local_win
        self.next_local_win += 1
        return wid
