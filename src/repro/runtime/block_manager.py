"""The block manager: one host-side agent per dCUDA rank (§III-A).

The block manager consumes its rank's command queue and implements every
command with nonblocking MPI operations, mirroring the paper's single
worker-thread design: all host occupancy is charged against the node's
FCFS ``worker`` resource.

Distributed notified put — the Fig. 5 sequence:

1. the device library enqueued the command (meta tuple) — one PCIe write;
2. the origin block manager forwards the meta information to the target
   event handler and sends the payload directly from device memory
   (device-to-device, never staged);
3. once both sends signal local completion, the origin block manager
   updates the flush counter on the device;
4. the target event handler dispatches the meta to the target block
   manager, which posts a receive for the payload;
5. on payload arrival the target block manager stores it into the target
   window and enqueues a notification on the target device.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

import numpy as np

from ..sim import PENDING, AllOf, Event
from .commands import (
    COLLECTIVE_WIN,
    Ack,
    BarrierCommand,
    FinishCommand,
    GetCommand,
    NonblockingBarrierCommand,
    NotifyCommand,
    Notification,
    PutCommand,
    WinCreateCommand,
    WinFreeCommand,
)
from .meta import META_BYTES, GetMeta, PutMeta, RT_TAG_META, data_tag
from .state import RankState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .system import RuntimeSystem

__all__ = ["BlockManager"]


class BlockManager:
    """Processes one rank's commands and its incoming remote accesses."""

    #: Cached :func:`repro.dcuda.notifications.deliver` (class-level, filled
    #: on first use — the per-call lazy import is measurable on the hot
    #: notify path).
    _deliver_fn = None

    def __init__(self, system: "RuntimeSystem", state: RankState):
        self.system = system
        self.runtime = system.runtime
        self.state = state
        self.env = system.env
        self.node = system.node
        self.world = self.runtime.world
        self.cfg = self.runtime.cfg
        # Observability: per-command-type handling-latency histograms
        # (dequeue to end of the loop iteration), shared across ranks.
        obs = self.node.obs
        use_hists = bool(obs) and obs.cfg.latency_histograms
        self._obs = obs if use_hists else None
        self._cmd_hists: Optional[dict] = {} if use_hists else None

    def _note_command(self, cmd: Any, t0: float) -> None:
        """Bin the handling latency of *cmd* (obs enabled only)."""
        name = type(cmd).__name__
        hist = self._cmd_hists.get(name)
        if hist is None:
            hist = self._cmd_hists[name] = self._obs.latency_histogram(
                f"bm.cmd.{name}.latency")
        hist.observe(self.env._now - t0)

    # ------------------------------------------------------------------ loop --
    def run(self) -> Generator[Event, Any, None]:
        """Main dispatch loop; ends after the rank's finish command."""
        queue = self.state.cmd_queue
        host = self.cfg.host
        poll_latency = host.poll_latency
        command_cost = host.command_cost
        worker = self.node.worker
        sem = worker._sem
        buffered = queue._entries._items   # occupancy fast path
        while True:
            if buffered:
                # A busy manager drains its queue without re-polling, so
                # batches only pay the poll latency once.
                cmd = queue.try_dequeue()
                t0 = self.env._now
            else:
                # Poll elision: park until the next commit, waking exactly
                # poll_latency after it — the tick at which the polling
                # worker thread would have noticed the new entry.  The
                # wake carries the commit time so the handling-latency
                # histograms keep their old dequeue-time anchor.
                cmd, t0 = yield queue.park_consume(poll_latency)
            # Inlined worker.use(command_cost) — the per-command host
            # charge resumes this frame twice, so the delegated generator
            # is pure overhead; acquire/hold/release and the busy-time
            # accounting are identical to Resource.use.
            if sem._available > 0 and not sem._queue:
                sem._available -= 1
                yield 0.0
            else:
                free = sem._efree
                if free:
                    ev = free.pop()
                    ev.callbacks = []
                    ev._value = PENDING
                    ev._scheduled = False
                else:
                    ev = Event(sem.env, sem._req_name)
                sem._queue.append(ev)
                yield ev
                free.append(ev)
            try:
                worker.busy_time += command_cost
                worker.uses += 1
                yield command_cost
            finally:
                sem.release()
            # Exact-class dispatch ordered by frequency (notifications of
            # same-node puts dominate); no command class is subclassed.
            cls = cmd.__class__
            if cls is NotifyCommand:
                yield from self._handle_notify(cmd)
            elif cls is PutCommand:
                self._start_put(cmd)
            elif cls is GetCommand:
                self._start_get(cmd)
            elif cls is BarrierCommand:
                yield from self._handle_barrier(cmd)
            elif cls is NonblockingBarrierCommand:
                # §V extension: runs in the background; the command loop
                # keeps draining so the rank can overlap past the barrier.
                self.env.process(self._handle_ibarrier(cmd),
                                 name=f"ibar:r{cmd.origin_rank}")
            elif cls is WinCreateCommand:
                yield from self._handle_win_create(cmd)
            elif cls is WinFreeCommand:
                yield from self._handle_win_free(cmd)
            elif cls is FinishCommand:
                yield from self._handle_finish(cmd)
                if self._cmd_hists is not None:
                    self._note_command(cmd, t0)
                return
            else:
                raise TypeError(f"unknown command {cmd!r}")
            if self._cmd_hists is not None:
                self._note_command(cmd, t0)

    # ------------------------------------------------------- RMA origin side --
    def _start_put(self, cmd: PutCommand) -> None:
        """Fig. 5 steps 2-3 (origin side) — non-blocking, loop continues."""
        xfer = self.runtime.next_xfer_id()
        target_node = self.runtime.node_of_rank(cmd.target_rank)
        snapshot = np.ascontiguousarray(cmd.src[: cmd.count])
        meta = PutMeta(xfer_id=xfer, origin_rank=cmd.origin_rank,
                       target_rank=cmd.target_rank,
                       global_win_id=cmd.global_win_id,
                       target_offset=cmd.target_offset, count=cmd.count,
                       nbytes=float(snapshot.nbytes), tag=cmd.tag,
                       notify=cmd.notify)
        meta_req = self.world.isend(self.node.index, target_node, meta,
                                    tag=RT_TAG_META, nbytes=META_BYTES)
        data_req = self.world.isend(self.node.index, target_node, snapshot,
                                    tag=data_tag(xfer), device=True,
                                    mode="d2d")
        self.env.process(self._put_local_completion(cmd, meta_req, data_req),
                         name=f"putdone:r{cmd.origin_rank}")

    def _put_local_completion(self, cmd: PutCommand, meta_req, data_req):
        yield AllOf(self.env, [meta_req.event, data_req.event])
        yield from self.node.host_work(self.cfg.host.request_cost)
        yield from self._complete_flush(cmd.flush_id)

    def _start_get(self, cmd: GetCommand) -> None:
        """Origin side of a notified get: request, await reply, deliver."""
        xfer = self.runtime.next_xfer_id()
        target_node = self.runtime.node_of_rank(cmd.target_rank)
        meta = GetMeta(xfer_id=xfer, origin_rank=cmd.origin_rank,
                       target_rank=cmd.target_rank,
                       global_win_id=cmd.global_win_id,
                       target_offset=cmd.target_offset, count=cmd.count,
                       tag=cmd.tag)
        reply_req = self.world.irecv(self.node.index, source=target_node,
                                     tag=data_tag(xfer))
        self.world.isend(self.node.index, target_node, meta,
                         tag=RT_TAG_META, nbytes=META_BYTES)
        self.env.process(self._get_completion(cmd, reply_req),
                         name=f"getdone:r{cmd.origin_rank}")

    def _deliver(self, state: RankState, global_win_id, source: int,
                 tag: int):
        """Shared notification delivery point (see
        :func:`repro.dcuda.notifications.deliver`); imported lazily —
        the dcuda package imports the runtime, not vice versa."""
        deliver = self._deliver_fn
        if deliver is None:
            from ..dcuda.notifications import deliver

            type(self)._deliver_fn = staticmethod(deliver)
        return deliver(state, global_win_id, source, tag)

    def _get_completion(self, cmd: GetCommand, reply_req):
        msg = yield from reply_req.wait()
        yield from self.node.host_work(self.cfg.host.request_cost)
        data = msg.payload
        cmd.dst[: cmd.count] = data
        if cmd.notify:
            # Get notifications are delivered at the *origin* so the caller
            # can wait for its own gets (notified-access semantics).
            yield from self._deliver(self.state, cmd.global_win_id,
                                     cmd.target_rank, cmd.tag)
        yield from self._complete_flush(cmd.flush_id)

    def _handle_notify(self, cmd: NotifyCommand):
        """Shared-memory RMA: data already moved on-device; deliver the
        notification to the (same-node) target and update the flush."""
        if cmd.notify:
            yield from self._deliver(self.runtime.state_of(cmd.target_rank),
                                     cmd.global_win_id, cmd.origin_rank,
                                     cmd.tag)
        yield from self._complete_flush(cmd.flush_id)

    # ------------------------------------------------------- RMA target side --
    def incoming_put(self, meta: PutMeta) -> Generator[Event, Any, None]:
        """Fig. 5 steps 5-7 (target side), spawned by the event handler."""
        req = self.world.irecv(self.node.index,
                               source=self.runtime.node_of_rank(
                                   meta.origin_rank),
                               tag=data_tag(meta.xfer_id))
        msg = yield from req.wait()
        yield from self.node.host_work(self.cfg.host.request_cost)
        buf = self.system.window_buffer(meta.global_win_id, meta.target_rank)
        if meta.target_offset + meta.count > buf.size:
            raise IndexError(
                f"put [{meta.target_offset}:{meta.target_offset + meta.count}]"
                f" out of bounds for window {meta.global_win_id} of rank "
                f"{meta.target_rank} ({buf.size} elements)")
        if meta.count:
            if msg.payload.dtype != buf.dtype:
                raise TypeError(
                    f"put dtype {msg.payload.dtype} does not match window "
                    f"{meta.global_win_id} dtype {buf.dtype}")
            buf[meta.target_offset:meta.target_offset + meta.count] = \
                msg.payload
        if meta.notify:
            yield from self._deliver(self.state, meta.global_win_id,
                                     meta.origin_rank, meta.tag)

    def incoming_get(self, meta: GetMeta) -> Generator[Event, Any, None]:
        """Target side of a get: read the window, send the data back."""
        yield from self.node.host_work(self.cfg.host.request_cost)
        buf = self.system.window_buffer(meta.global_win_id, meta.target_rank)
        if meta.target_offset + meta.count > buf.size:
            raise IndexError(
                f"get [{meta.target_offset}:{meta.target_offset + meta.count}]"
                f" out of bounds for window {meta.global_win_id} of rank "
                f"{meta.target_rank} ({buf.size} elements)")
        snapshot = buf[meta.target_offset:meta.target_offset + meta.count]
        self.world.isend(self.node.index,
                         self.runtime.node_of_rank(meta.origin_rank),
                         np.ascontiguousarray(snapshot),
                         tag=data_tag(meta.xfer_id), device=True, mode="d2d")

    # ----------------------------------------------------------- collectives --
    def _handle_win_create(self, cmd: WinCreateCommand):
        gid = yield from self.system.register_window(cmd)
        self.state.win_translation[cmd.local_win_id] = gid
        yield from self.state.ack_queue.enqueue(Ack("win_create", gid))

    def _handle_win_free(self, cmd: WinFreeCommand):
        yield from self.system.unregister_window(cmd)
        yield from self.state.ack_queue.enqueue(Ack("win_free"))

    def _handle_barrier(self, cmd: BarrierCommand):
        yield from self.system.collective_arrive("barrier", cmd.comm_name)
        yield from self.state.ack_queue.enqueue(Ack("barrier"))

    def _handle_ibarrier(self, cmd: NonblockingBarrierCommand):
        yield from self.system.collective_arrive("ibarrier", cmd.comm_name)
        yield from self.state.notif_queue.enqueue(
            Notification(win_id=COLLECTIVE_WIN, source=cmd.origin_rank,
                         tag=cmd.tag))

    def _handle_finish(self, cmd: FinishCommand):
        yield from self.system.collective_arrive("finish", "world")
        self.state.finished = True
        yield from self.state.ack_queue.enqueue(Ack("finish"))

    # ------------------------------------------------------------------ flush --
    def _complete_flush(self, flush_id: int):
        """Advance the in-order flush counter; write it to the device."""
        state = self.state
        advanced = state.flush_tracker.complete(flush_id)
        if not advanced:
            return
        # Inlined pcie.mapped_post() (the _transact generator two frames
        # down): flush completions run once per RMA command, and each of
        # their three yields otherwise resumes through the full delegation
        # chain.  Semantics identical: one posted mapped write, engine
        # occupancy under the FCFS lock, then the visibility delay.
        pcie = state.pcie
        pcie.mapped_writes += 1
        lock = pcie._mapped_lock
        if lock._available > 0 and not lock._queue:
            lock._available -= 1
            yield 0.0
        else:
            free = lock._efree
            if free:
                ev = free.pop()
                ev.callbacks = []
                ev._value = PENDING
                ev._scheduled = False
            else:
                ev = Event(lock.env, lock._req_name)
            lock._queue.append(ev)
            yield ev
            free.append(ev)
        try:
            yield pcie.cfg.mapped_post_occupancy
        finally:
            lock.release()
        yield pcie.cfg.mapped_write_latency
        # The tracker only grows, so later writes never regress the value.
        state.flush_counter = max(state.flush_counter,
                                  state.flush_tracker.counter)
        state.flush_signal.fire()
