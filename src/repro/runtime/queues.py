"""Circular-buffer queues between device library and host runtime.

Faithful model of the paper's queue design (§III-C, "Queue Design"):

* the buffer (including its tail pointer) lives in **receiver** memory, so
  an enqueue is a single posted PCIe write of the entry plus an embedded
  sequence number — the receiver detects valid entries by sequence number
  instead of a head pointer;
* flow control is **credit based**: the sender starts with ``size`` credits
  and decrements per enqueue; when the credits hit zero it reloads the tail
  pointer from receiver memory (one PCIe *read* transaction) to recompute
  the available space, and waits if the queue is still full;
* dequeues are local to the receiver and cost no PCIe transactions.

Both host→device (ack/notification) and device→host (command/logging)
queues cross the same PCIe link; intra-memory queues can be built by
passing ``link=None`` (no transaction cost), which the tests use.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..hw.pcie import PCIeLink
from ..sim import Environment, Event, Signal, Store

__all__ = ["CircularQueue", "QueueStats"]


class QueueStats:
    """Counters exposed for tests and the queue-sizing ablation."""

    __slots__ = ("enqueues", "dequeues", "credit_reloads", "full_stalls")

    def __init__(self) -> None:
        self.enqueues = 0
        self.dequeues = 0
        self.credit_reloads = 0
        self.full_stalls = 0


class CircularQueue:
    """A single-producer single-consumer circular buffer over PCIe."""

    def __init__(self, env: Environment, size: int,
                 link: Optional[PCIeLink] = None, name: str = "queue",
                 obs: Any = None):
        if size < 1:
            raise ValueError(f"queue size must be >= 1, got {size}")
        self.env = env
        self.size = size
        self.link = link
        self.name = name
        self.stats = QueueStats()
        # Observability: depth (receiver view) and sender-credit occupancy
        # series plus enqueue/stall counters, or None when disabled.  The
        # samples are recorded at the existing state-change points only —
        # no extra events, no schedule perturbation.
        self._depth_series = obs.queue_series(f"queue.{name}.depth") \
            if obs else None
        self._credit_series = obs.queue_series(f"queue.{name}.credits") \
            if obs else None
        self._enq_counter = obs.queue_counter(f"queue.{name}.enqueues") \
            if obs else None
        self._stall_counter = obs.queue_counter(
            f"queue.{name}.full_stalls") if obs else None
        # Receiver-memory state: the entry buffer and the tail counter.
        self._entries = Store(env, name=f"buf:{name}")
        self._tail = 0          # receiver's dequeue counter
        self._head = 0          # sender's enqueue counter
        # Sender-local credit state.
        self._credits = size
        self._known_tail = 0    # sender's last-read tail value
        self._space_freed = Signal(env, name=f"space:{name}")
        #: Fired on every enqueue — receivers that poll (the device-side
        #: notification matcher) use it to wake instead of busy-spinning.
        self.arrived = Signal(env, name=f"arrived:{name}")
        self._seq = 0

    # -- introspection --------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Entries currently buffered (receiver view)."""
        return len(self._entries)

    @property
    def credits(self) -> int:
        """Sender's local free-entry estimate (may lag the true value)."""
        return self._credits

    # -- sender side --------------------------------------------------------
    def _reload_credits(self) -> Generator[Event, Any, None]:
        """Read the tail pointer from receiver memory (one PCIe read)."""
        self.stats.credit_reloads += 1
        if self.link is not None:
            yield from self.link.mapped_read()
        self._known_tail = self._tail
        self._credits = self.size - (self._head - self._known_tail)
        if self._credit_series is not None:
            self._credit_series.sample(self.env.now, self._credits)

    def enqueue(self, entry: Any) -> Generator[Event, Any, None]:
        """Append *entry*; amortized one posted PCIe write per call.

        The sender pays only the posted-write occupancy; the entry becomes
        visible to the receiver after the write-visibility latency.  A
        constant delay preserves FIFO order.
        """
        if self._credits == 0:
            yield from self._reload_credits()
            while self._credits == 0:
                self.stats.full_stalls += 1
                if self._stall_counter is not None:
                    self._stall_counter.inc()
                yield self._space_freed.wait()
                yield from self._reload_credits()
        self._credits -= 1
        self._head += 1
        if self._credit_series is not None:
            self._credit_series.sample(self.env.now, self._credits)
        delay = 0.0
        if self.link is not None:
            # One transaction writes the entry together with its sequence
            # number; the receiver validates entries by sequence number.
            yield from self.link.mapped_post()
            delay = self.link.write_visibility_delay
        self._seq += 1
        if delay > 0:
            # Fire-and-forget: the commit needs no waitable event, so use
            # the kernel's lightweight deferred-call lane.
            self.env.call_at(delay, self._commit, self._seq, entry)
        else:
            self._commit(self._seq, entry)

    def _commit(self, seq: int, entry: Any) -> None:
        """The posted write landed in receiver memory."""
        self._entries.try_put((seq, entry))
        self.stats.enqueues += 1
        if self._depth_series is not None:
            self._depth_series.sample(self.env.now, len(self._entries))
            self._enq_counter.inc()
        self.arrived.fire()

    def try_room(self) -> bool:
        """Sender-local, zero-cost check whether credits remain."""
        return self._credits > 0

    # -- receiver side --------------------------------------------------------
    def dequeue(self) -> Generator[Event, Any, Any]:
        """Remove the oldest entry (blocking, local to the receiver)."""
        seq, entry = yield self._entries.get()
        self._tail += 1
        self.stats.dequeues += 1
        if self._depth_series is not None:
            self._depth_series.sample(self.env.now, len(self._entries))
        # Waking a starved sender models the sender's polling loop
        # observing the advanced tail pointer; the sender still pays the
        # PCIe read in _reload_credits.
        self._space_freed.fire()
        return entry

    def try_dequeue(self) -> Any:
        """Non-blocking dequeue; returns ``None`` when empty."""
        item = self._entries.try_get()
        if item is None:
            return None
        self._tail += 1
        self.stats.dequeues += 1
        if self._depth_series is not None:
            self._depth_series.sample(self.env.now, len(self._entries))
        self._space_freed.fire()
        return item[1]
