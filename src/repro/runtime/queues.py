"""Circular-buffer queues between device library and host runtime.

Faithful model of the paper's queue design (§III-C, "Queue Design"):

* the buffer (including its tail pointer) lives in **receiver** memory, so
  an enqueue is a single posted PCIe write of the entry plus an embedded
  sequence number — the receiver detects valid entries by sequence number
  instead of a head pointer;
* flow control is **credit based**: the sender starts with ``size`` credits
  and decrements per enqueue; when the credits hit zero it reloads the tail
  pointer from receiver memory (one PCIe *read* transaction) to recompute
  the available space, and waits if the queue is still full;
* dequeues are local to the receiver and cost no PCIe transactions.

Both host→device (ack/notification) and device→host (command/logging)
queues cross the same PCIe link; intra-memory queues can be built by
passing ``link=None`` (no transaction cost), which the tests use.

Hardening under fault injection
-------------------------------
When a fault plane is attached (``faults=``), the queue defends exactly
the way the paper's design allows it to:

* **dropped posted writes** are detected by the gap they leave in the
  sequence numbers; the slot is re-posted after an exponentially backed-off
  redelivery delay, later slots park until the gap closes (delivery stays
  in sequence order), and a :class:`~repro.errors.DCudaFaultError` is
  raised when the redelivery budget is exhausted;
* **duplicated posted writes** carry a stale sequence number by the time
  they land, so the receiver's validity check discards them;
* **credit starvation** turns the sender's wait into a bounded
  retry-with-exponential-backoff loop (re-reading the tail pointer each
  round) that raises :class:`~repro.errors.DCudaTimeoutError` instead of
  hanging.

With ``faults=None`` (the default) every hot path is byte-for-byte the
unhardened one — the golden-fixture replay test holds.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional

from ..errors import DCudaFaultError, DCudaTimeoutError
from ..hw.pcie import PCIeLink
from ..sim import PARK, PENDING, AnyOf, Environment, Event, Signal, Store

__all__ = ["CircularQueue", "QueueStats"]


class QueueStats:
    """Counters exposed for tests and the queue-sizing ablation."""

    __slots__ = ("enqueues", "dequeues", "credit_reloads", "full_stalls",
                 "dropped_writes", "duplicates_dropped", "recovered",
                 "retries", "starved_reloads")

    def __init__(self) -> None:
        self.enqueues = 0
        self.dequeues = 0
        self.credit_reloads = 0
        self.full_stalls = 0
        # Hardening counters (only move when a fault plane is attached).
        self.dropped_writes = 0      # posted writes lost by injection
        self.duplicates_dropped = 0  # stale-seq entries discarded
        self.recovered = 0           # dropped slots redelivered in order
        self.retries = 0             # backed-off credit-handshake retries
        self.starved_reloads = 0     # reloads that saw injected starvation


class CircularQueue:
    """A single-producer single-consumer circular buffer over PCIe."""

    def __init__(self, env: Environment, size: int,
                 link: Optional[PCIeLink] = None, name: str = "queue",
                 obs: Any = None, faults: Any = None):
        if size < 1:
            raise ValueError(f"queue size must be >= 1, got {size}")
        self.env = env
        self.size = size
        self.link = link
        self.name = name
        self.stats = QueueStats()
        # Fault plane (or None).  The hardened commit/enqueue paths are
        # only taken when a plane is attached; the default path is the
        # unperturbed one.
        self._faults = faults
        self._next_deliver = 1              # next in-order sequence number
        self._parked: Dict[int, Any] = {}   # out-of-order arrivals by seq
        # Observability: depth (receiver view) and sender-credit occupancy
        # series plus enqueue/stall counters, or None when disabled.  The
        # samples are recorded at the existing state-change points only —
        # no extra events, no schedule perturbation.
        self._depth_series = obs.queue_series(f"queue.{name}.depth") \
            if obs else None
        self._credit_series = obs.queue_series(f"queue.{name}.credits") \
            if obs else None
        self._enq_counter = obs.queue_counter(f"queue.{name}.enqueues") \
            if obs else None
        self._stall_counter = obs.queue_counter(
            f"queue.{name}.full_stalls") if obs else None
        # Receiver-memory state: the entry buffer and the tail counter.
        self._entries = Store(env, name=f"buf:{name}")
        self._tail = 0          # receiver's dequeue counter
        self._head = 0          # sender's enqueue counter
        # Sender-local credit state.
        self._credits = size
        self._known_tail = 0    # sender's last-read tail value
        self._space_freed = Signal(env, name=f"space:{name}")
        #: Fired on every enqueue — receivers that poll (the device-side
        #: notification matcher) use it to wake instead of busy-spinning.
        self.arrived = Signal(env, name=f"arrived:{name}")
        self._seq = 0
        # Poll-elision registration (see park_consume / park_poll): the
        # parked consumer process, its poll delay, and whether the waking
        # commit should hand it the entry directly (consume) or leave the
        # entry buffered (poll).
        self._park_proc: Any = None
        self._park_delay = 0.0
        self._park_take = False

    # -- introspection --------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Entries currently buffered (receiver view)."""
        return len(self._entries)

    @property
    def credits(self) -> int:
        """Sender's local free-entry estimate (may lag the true value)."""
        return self._credits

    # -- sender side --------------------------------------------------------
    def _reload_credits(self) -> Generator[Event, Any, None]:
        """Read the tail pointer from receiver memory (one PCIe read)."""
        self.stats.credit_reloads += 1
        if self.link is not None:
            yield from self.link.mapped_read()
        self._known_tail = self._tail
        self._credits = self.size - (self._head - self._known_tail)
        if self._faults is not None and \
                self._faults.credit_starved(self.name, self.env._now):
            # An injected starvation window: the reloaded tail reads as if
            # the receiver made no progress, so the sender sees no space.
            self._credits = 0
            self.stats.starved_reloads += 1
        if self._credit_series is not None:
            self._credit_series.sample(self.env._now, self._credits)

    def enqueue(self, entry: Any) -> Generator[Event, Any, None]:
        """Append *entry*; amortized one posted PCIe write per call.

        The sender pays only the posted-write occupancy; the entry becomes
        visible to the receiver after the write-visibility latency.  A
        constant delay preserves FIFO order.
        """
        if self._faults is not None:
            yield from self._enqueue_hardened(entry)
            return
        if self._credits == 0:
            yield from self._reload_credits()
            while self._credits == 0:
                self.stats.full_stalls += 1
                if self._stall_counter is not None:
                    self._stall_counter.inc()
                yield self._space_freed.wait()
                yield from self._reload_credits()
        self._credits -= 1
        self._head += 1
        if self._credit_series is not None:
            self._credit_series.sample(self.env._now, self._credits)
        link = self.link
        if link is not None:
            # One transaction writes the entry together with its sequence
            # number; the receiver validates entries by sequence number.
            # Inlined PCIeLink.mapped_post/_transact (identical yield
            # sequence): every put/get crosses this path, so the saved
            # generator frame per enqueue is measurable.
            link.mapped_writes += 1
            lock = link._mapped_lock
            if lock._available > 0 and not lock._queue:
                lock._available -= 1
                yield 0.0
            else:
                free = lock._efree
                if free:
                    ev = free.pop()
                    ev.callbacks = []
                    ev._value = PENDING
                    ev._scheduled = False
                else:
                    ev = Event(lock.env, lock._req_name)
                lock._queue.append(ev)
                yield ev
                free.append(ev)
            try:
                yield link.cfg.mapped_post_occupancy
            finally:
                lock.release()
            self._seq += 1
            delay = link.cfg.mapped_write_latency
            if delay > 0:
                # Fire-and-forget: the commit needs no waitable event, so
                # use the kernel's lightweight deferred-call lane.
                self.env.call_at(delay, self._commit, self._seq, entry)
                return
        else:
            self._seq += 1
        self._commit(self._seq, entry)

    def enqueue_bulk(self, entries: Any) -> Generator[Event, Any, None]:
        """Append several entries back-to-back in one generator frame.

        Semantically identical to ``for e in entries: yield from
        self.enqueue(e)`` — per-entry credits, posted writes, and
        visibility delays are all preserved (so timestamps are unchanged)
        — but the whole batch shares one frame instead of paying a
        generator resume per entry.  Under an attached fault plane each
        entry goes through the hardened path individually.
        """
        if self._faults is not None:
            for entry in entries:
                yield from self._enqueue_hardened(entry)
            return
        env = self.env
        for entry in entries:
            if self._credits == 0:
                yield from self._reload_credits()
                while self._credits == 0:
                    self.stats.full_stalls += 1
                    if self._stall_counter is not None:
                        self._stall_counter.inc()
                    yield self._space_freed.wait()
                    yield from self._reload_credits()
            self._credits -= 1
            self._head += 1
            if self._credit_series is not None:
                self._credit_series.sample(env._now, self._credits)
            link = self.link
            if link is not None:
                link.mapped_writes += 1
                lock = link._mapped_lock
                if lock._available > 0 and not lock._queue:
                    lock._available -= 1
                    yield 0.0
                else:
                    free = lock._efree
                    if free:
                        ev = free.pop()
                        ev.callbacks = []
                        ev._value = PENDING
                        ev._scheduled = False
                    else:
                        ev = Event(lock.env, lock._req_name)
                    lock._queue.append(ev)
                    yield ev
                    free.append(ev)
                try:
                    yield link.cfg.mapped_post_occupancy
                finally:
                    lock.release()
                self._seq += 1
                delay = link.cfg.mapped_write_latency
                if delay > 0:
                    env.call_at(delay, self._commit, self._seq, entry)
                    continue
            else:
                self._seq += 1
            self._commit(self._seq, entry)

    def _enqueue_hardened(self, entry: Any) -> Generator[Event, Any, None]:
        """Enqueue under an attached fault plane: bounded, never hangs.

        The credit handshake becomes retry-with-exponential-backoff: each
        round waits for a space-freed signal *or* the backoff timer
        (whichever first), re-reads the tail pointer, and gives up with a
        :class:`DCudaTimeoutError` once the retry budget is spent.  The
        posted write then goes through :meth:`_commit_faulty`, which
        implements drop/duplicate recovery.

        Raises:
            DCudaTimeoutError: the handshake exhausted ``max_retries``.
        """
        cfg = self._faults.cfg
        if self._credits == 0:
            yield from self._reload_credits()
            attempt = 0
            while self._credits == 0:
                attempt += 1
                self.stats.full_stalls += 1
                if self._stall_counter is not None:
                    self._stall_counter.inc()
                if attempt > cfg.max_retries:
                    raise DCudaTimeoutError(
                        f"queue {self.name}: no credits after "
                        f"{cfg.max_retries} backed-off handshake retries",
                        sim_time=self.env._now)
                backoff = cfg.backoff_base * (2 ** (attempt - 1))
                freed = self._space_freed.wait()
                timer = self.env.timeout(backoff)
                which = yield AnyOf(self.env, [freed, timer])
                # Abandon the losing arm so the orphaned event neither
                # stretches the run nor leaks a signal waiter.
                (timer if which[0] == 0 else freed).abandoned = True
                self.stats.retries += 1
                yield from self._reload_credits()
        self._credits -= 1
        self._head += 1
        if self._credit_series is not None:
            self._credit_series.sample(self.env._now, self._credits)
        delay = 0.0
        if self.link is not None:
            yield from self.link.mapped_post()
            delay = self.link.write_visibility_delay
        self._seq += 1
        if delay > 0:
            self.env.call_at(delay, self._commit_faulty, self._seq, entry, 0)
        else:
            self._commit_faulty(self._seq, entry, 0)

    def _commit(self, seq: int, entry: Any) -> None:
        """The posted write landed in receiver memory."""
        proc = self._park_proc
        if proc is not None:
            # A parked consumer (poll elision): wake it at the exact tick
            # its poll loop would have observed this entry.  One-shot —
            # the registration clears here so batch arrivals coalesce into
            # the single wake (the consumer drains everything it finds).
            self._park_proc = None
            env = self.env
            if self._park_take:
                # Consume variant: the entry bypasses the buffer and rides
                # the wake payload together with its commit time (the
                # consumer's old resume point, for observation bookkeeping).
                self.stats.enqueues += 1
                if self._depth_series is not None:
                    self._depth_series.sample(env._now, len(self._entries))
                    self._enq_counter.inc()
                self.arrived.fire()
                # Receiver-side bookkeeping happens at commit time, exactly
                # when the old blocking dequeue would have performed it.
                self._tail += 1
                self.stats.dequeues += 1
                if self._depth_series is not None:
                    self._depth_series.sample(env._now, len(self._entries))
                self._space_freed.fire()
                env.wake_parked(self._park_delay, proc, (entry, env._now))
                return
            # Poll variant: the entry stays buffered; the consumer re-polls
            # (and drains) when the wake fires.
            self._entries.try_put(entry)
            self.stats.enqueues += 1
            if self._depth_series is not None:
                self._depth_series.sample(env._now, len(self._entries))
                self._enq_counter.inc()
            env.wake_parked(self._park_delay, proc, None)
            self.arrived.fire()
            return
        self._entries.try_put(entry)
        self.stats.enqueues += 1
        if self._depth_series is not None:
            self._depth_series.sample(self.env._now, len(self._entries))
            self._enq_counter.inc()
        self.arrived.fire()

    def _commit_faulty(self, seq: int, entry: Any, attempt: int) -> None:
        """Fault-aware commit: validity check, drop recovery, in-order drain.

        ``attempt`` is 0 for the original posted write, ``> 0`` for a
        redelivery of a dropped slot, and ``< 0`` for an injected duplicate
        (which skips the drop check so a dup cannot recurse forever).

        Raises:
            DCudaFaultError: a slot was dropped more than ``max_retries``
                times (via :meth:`_redeliver`).
        """
        now = self.env._now
        if seq < self._next_deliver:
            # Sequence-number validity check (§III-C): the slot was already
            # delivered — this is a stale duplicate; discard it.
            self.stats.duplicates_dropped += 1
            return
        if attempt >= 0 and self._faults.queue_drop(self.name, now):
            # The posted write was lost in flight.  The gap it leaves in
            # the sequence numbers parks later slots until redelivery.
            self.stats.dropped_writes += 1
            self._redeliver(seq, entry, attempt + 1)
            return
        self._parked[seq] = entry
        if attempt > 0:
            self.stats.recovered += 1
        duplicate = attempt >= 0 and self._faults.queue_dup(self.name, now)
        while self._next_deliver in self._parked:
            self._commit(self._next_deliver,
                         self._parked.pop(self._next_deliver))
            self._next_deliver += 1
        if duplicate:
            # The duplicate lands after the original was delivered, so the
            # stale-seq check above is guaranteed to discard it.
            self.env.call_at(self._faults.cfg.redelivery_delay,
                             self._commit_faulty, seq, entry, -1)

    def _redeliver(self, seq: int, entry: Any, attempt: int) -> None:
        """Re-post a dropped slot after an exponentially backed-off delay."""
        cfg = self._faults.cfg
        if attempt > cfg.max_retries:
            raise DCudaFaultError(
                f"queue {self.name}: slot seq={seq} lost {attempt} times; "
                f"redelivery budget ({cfg.max_retries}) exhausted",
                sim_time=self.env._now)
        delay = cfg.redelivery_delay * (2 ** (attempt - 1))
        self.env.call_at(delay, self._commit_faulty, seq, entry, attempt)

    def try_room(self) -> bool:
        """Sender-local, zero-cost check whether credits remain."""
        return self._credits > 0

    # -- receiver side --------------------------------------------------------
    def park_consume(self, delay: float) -> Any:
        """Register the active process for a parked blocking dequeue.

        Intended for the consumer's empty-queue path::

            entry, committed_at = yield queue.park_consume(poll_latency)

        The process detaches from the schedule entirely; the next commit
        wakes it ``delay`` after the commit instant — the exact tick at
        which the old ``dequeue(); yield poll_latency`` sequence would have
        resumed — and hands it the entry plus the commit timestamp.  Only
        one consumer may park at a time (single-consumer queues).
        """
        proc = self.env._active_process
        proc._park_queue = self
        self._park_proc = proc
        self._park_delay = delay
        self._park_take = True
        return PARK

    def park_poll(self, delay: float) -> Any:
        """Register the active process for a parked poll wake.

        Intended for consumers that drain via :meth:`try_dequeue` /
        :meth:`drain_all`::

            yield queue.park_poll(poll_interval)

        The next commit leaves the entry buffered and wakes the process
        ``delay`` after the commit instant — the exact tick at which the
        old ``yield arrived.wait(); yield poll_interval`` sequence would
        have re-polled.  Later same-wake commits stay buffered and are
        drained together (wake coalescing).
        """
        proc = self.env._active_process
        proc._park_queue = self
        self._park_proc = proc
        self._park_delay = delay
        self._park_take = False
        return PARK

    def dequeue(self) -> Generator[Event, Any, Any]:
        """Remove the oldest entry (blocking, local to the receiver)."""
        entry = yield self._entries.get()
        self._tail += 1
        self.stats.dequeues += 1
        if self._depth_series is not None:
            self._depth_series.sample(self.env._now, len(self._entries))
        # Waking a starved sender models the sender's polling loop
        # observing the advanced tail pointer; the sender still pays the
        # PCIe read in _reload_credits.
        self._space_freed.fire()
        return entry

    def dequeue_timeout(self, timeout: float, rank: Optional[int] = None,
                        what: str = "entry") -> Generator[Event, Any, Any]:
        """Blocking dequeue with a simulated-time bound.

        Args:
            timeout: Simulated seconds to wait before giving up.
            rank: World rank attached to the error for diagnosis.
            what: Human-readable description of the awaited entry.

        Returns:
            The dequeued entry.

        Raises:
            DCudaTimeoutError: nothing arrived within ``timeout``; carries
                ``rank`` and the simulated time.
        """
        get_ev = self._entries.get()
        if not get_ev.triggered:
            timer = self.env.timeout(timeout)
            result = yield AnyOf(self.env, [get_ev, timer])
            if result[0] == 0 or get_ev.triggered:
                timer.abandoned = True
            if result[0] == 1 and not get_ev.triggered:
                # The timer won and the get never fired: abandon the
                # waiter so the store prunes it instead of handing it a
                # future entry nobody will read.
                get_ev.abandoned = True
                raise DCudaTimeoutError(
                    f"queue {self.name}: timed out after {timeout:.3e}s "
                    f"simulated waiting for {what}",
                    rank=rank, sim_time=self.env._now)
            # Either the get won, or both fired in the same step — the
            # entry was removed from the buffer either way, so consume it.
        entry = get_ev.value
        self._tail += 1
        self.stats.dequeues += 1
        if self._depth_series is not None:
            self._depth_series.sample(self.env._now, len(self._entries))
        self._space_freed.fire()
        return entry

    def try_dequeue(self) -> Any:
        """Non-blocking dequeue; returns ``None`` when empty."""
        item = self._entries.try_get()
        if item is None:
            return None
        self._tail += 1
        self.stats.dequeues += 1
        if self._depth_series is not None:
            self._depth_series.sample(self.env._now, len(self._entries))
        self._space_freed.fire()
        return item

    def drain_all(self) -> list:
        """Remove and return every buffered entry in one pass.

        Equivalent to calling :meth:`try_dequeue` until it returns ``None``
        — same entries, same order, same receiver-side bookkeeping at the
        same instant — but without the per-entry store scan and sender
        wakeups (``_space_freed`` fires once; the extra fires of the loop
        form woke nobody, since no process runs between synchronous
        removals).  Returns ``[]`` when the buffer is empty.
        """
        store = self._entries
        if store._getters:
            raise RuntimeError(
                f"drain_all on {self.name!r} with queued getters")
        items = store._items
        if not items:
            return []
        out = list(items)
        del items[:]
        n = len(out)
        self._tail += n
        self.stats.dequeues += n
        if self._depth_series is not None:
            # The loop form sampled the depth after each removal.
            now = self.env._now
            sample = self._depth_series.sample
            for depth in range(n - 1, -1, -1):
                sample(now, depth)
        if store._putters:
            store._admit_putters()
        self._space_freed.fire()
        return out
