"""Inter-node runtime protocol messages.

The runtime-system instances talk to each other over the (simulated) MPI
substrate.  Meta messages describe a transfer (Fig. 5 step 2); the payload
data travels as a separate message matched by the transfer id.  Control
messages implement the flat-tree global synchronization used for barriers,
window creation, and finish.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

__all__ = [
    "RT_TAG_META", "RT_TAG_DATA_BASE", "META_BYTES", "CTRL_BYTES",
    "data_tag", "PutMeta", "GetMeta", "GetReply", "CtrlArrive", "CtrlRelease",
]

# Reserved tag space, below COLL_TAG_BASE (1 << 24).
RT_TAG_META = 1 << 23
RT_TAG_DATA_BASE = 1 << 22
_DATA_TAG_MOD = 1 << 18

#: Wire size of a meta-information tuple (data pointer, size, target rank,
#: window, offset, tag, flush id — §III-B).
META_BYTES = 64.0
#: Wire size of a synchronization token.
CTRL_BYTES = 32.0


def data_tag(xfer_id: int) -> int:
    """Tag of the payload message belonging to transfer *xfer_id*."""
    return RT_TAG_DATA_BASE + (xfer_id % _DATA_TAG_MOD)


@dataclass(frozen=True, slots=True)
class PutMeta:
    """Announces an incoming notified put (origin → target event handler)."""

    xfer_id: int
    origin_rank: int
    target_rank: int
    global_win_id: Tuple[str, int]
    target_offset: int
    count: int
    nbytes: float
    tag: int
    notify: bool


@dataclass(frozen=True, slots=True)
class GetMeta:
    """Requests window data (origin → target event handler)."""

    xfer_id: int
    origin_rank: int
    target_rank: int
    global_win_id: Tuple[str, int]
    target_offset: int
    count: int
    tag: int


@dataclass(frozen=True, slots=True)
class CtrlArrive:
    """Node-level arrival at a global synchronization point."""

    key: Any
    node: int


@dataclass(frozen=True, slots=True)
class CtrlRelease:
    """Coordinator's release of a global synchronization point."""

    key: Any


@dataclass(frozen=True, slots=True)
class GetReply:
    """Marker payload class (the actual array rides in the envelope)."""
