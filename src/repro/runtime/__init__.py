"""dCUDA host-side runtime system (event handler, block managers, queues)."""

from .queues import CircularQueue, QueueStats
from .commands import (
    Ack,
    BarrierCommand,
    FinishCommand,
    GetCommand,
    LogCommand,
    NotifyCommand,
    Notification,
    PutCommand,
    WinCreateCommand,
    WinFreeCommand,
)
from .state import FlushTracker, RankState
from .block_manager import BlockManager
from .system import DCudaRuntime, RuntimeSystem, WindowId

__all__ = [
    "CircularQueue", "QueueStats",
    "Ack", "BarrierCommand", "FinishCommand", "GetCommand", "LogCommand",
    "NotifyCommand", "Notification", "PutCommand", "WinCreateCommand",
    "WinFreeCommand",
    "FlushTracker", "RankState",
    "BlockManager",
    "DCudaRuntime", "RuntimeSystem", "WindowId",
]
