"""Rank placement: world rank → (node, GPU) mapping policies.

dCUDA numbers ranks over the whole machine; *where* each rank's block
lives decides whether its puts ride the same-device copy path, the
intra-node NVLink-class link, or the inter-node interconnect.  The
legacy numbering — rank ``r`` on node ``r // ranks_per_device`` — is the
``block`` policy over single-GPU nodes and stays the default, so
existing workloads keep their exact rank → hardware mapping.

Policies:

* ``block`` — fill each GPU before moving to the next (canonical device
  order): neighbors in rank space share hardware, the right default for
  halo exchanges;
* ``round_robin`` — deal ranks across GPUs like cards: neighbors in
  rank space land on *different* hardware, maximizing the traffic the
  interconnect sees;
* ``explicit`` — an explicit ``rank -> (node, gpu)`` table for
  irregular experiments (e.g. a ping-pong pinned to the two ends of a
  ring).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import DCudaUsageError

__all__ = ["PlacementSpec", "Placement", "PLACEMENT_POLICIES",
           "resolve_placement"]

PLACEMENT_POLICIES = ("block", "round_robin", "explicit")


@dataclass(frozen=True)
class PlacementSpec:
    """Declarative placement policy (lives on ``MachineConfig``).

    Attributes:
        policy: One of :data:`PLACEMENT_POLICIES`.
        explicit: For ``policy="explicit"``: ``explicit[r]`` is the
            ``(node, gpu)`` hosting world rank *r*; its length is the
            world size (``ranks_per_device`` is ignored).
    """

    policy: str = "block"
    explicit: Optional[Tuple[Tuple[int, int], ...]] = None

    def __post_init__(self) -> None:
        if self.policy not in PLACEMENT_POLICIES:
            raise DCudaUsageError(
                f"PlacementSpec.policy must be one of "
                f"{PLACEMENT_POLICIES}, got {self.policy!r}")
        if (self.explicit is not None) != (self.policy == "explicit"):
            raise DCudaUsageError(
                "PlacementSpec.explicit must be given exactly when "
                f"policy='explicit' (got policy={self.policy!r}, "
                f"explicit={'set' if self.explicit is not None else 'unset'})")
        if self.explicit is not None:
            if isinstance(self.explicit, list):
                object.__setattr__(self, "explicit",
                                   tuple(tuple(e) for e in self.explicit))
            if not self.explicit:
                raise DCudaUsageError(
                    "explicit placement needs at least one rank")


class Placement:
    """A resolved placement: every world rank's hardware location.

    Attributes:
        total_ranks: World size.
        devices: Canonical ``(node, gpu)`` device order (all devices of
            the topology, including unpopulated ones).
    """

    def __init__(self, devices: Sequence[Tuple[int, int]],
                 rank_device: Sequence[int]):
        self.devices: Tuple[Tuple[int, int], ...] = tuple(devices)
        self._rank_device: Tuple[int, ...] = tuple(rank_device)
        self.total_ranks = len(self._rank_device)
        # Derived lookups, all precomputed once.
        self._node_of: List[int] = []
        self._gpu_of: List[int] = []
        self._device_rank: List[int] = []
        self._node_ranks: Dict[int, List[int]] = {}
        self._device_ranks: Dict[Tuple[int, int], List[int]] = {}
        for rank, dev in enumerate(self._rank_device):
            node, gpu = self.devices[dev]
            self._node_of.append(node)
            self._gpu_of.append(gpu)
            on_device = self._device_ranks.setdefault((node, gpu), [])
            self._device_rank.append(len(on_device))
            on_device.append(rank)
            self._node_ranks.setdefault(node, []).append(rank)
        #: Nodes hosting at least one rank, ascending (collectives
        #: coordinate over these; unpopulated nodes stay passive).
        self.participating_nodes: Tuple[int, ...] = tuple(
            sorted(self._node_ranks))

    # -- per-rank lookups --------------------------------------------------
    def node_of(self, rank: int) -> int:
        """Node index hosting world rank *rank*."""
        return self._node_of[rank]

    def gpu_of(self, rank: int) -> int:
        """GPU index (within its node) hosting world rank *rank*."""
        return self._gpu_of[rank]

    def device_of(self, rank: int) -> Tuple[int, int]:
        """``(node, gpu)`` hosting world rank *rank*."""
        return self._node_of[rank], self._gpu_of[rank]

    def device_rank(self, rank: int) -> int:
        """Rank's index within its device communicator."""
        return self._device_rank[rank]

    # -- per-location lookups ----------------------------------------------
    def ranks_on_node(self, node: int) -> Tuple[int, ...]:
        """World ranks hosted by *node*, ascending (may be empty)."""
        return tuple(self._node_ranks.get(node, ()))

    def ranks_on_device(self, node: int, gpu: int) -> Tuple[int, ...]:
        """World ranks hosted by GPU *gpu* of *node*, ascending."""
        return tuple(self._device_ranks.get((node, gpu), ()))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (f"<Placement {self.total_ranks} ranks over "
                f"{len(self._device_ranks)} populated device(s)>")


def resolve_placement(devices: Sequence[Tuple[int, int]],
                      ranks_per_device: int,
                      spec: PlacementSpec) -> Placement:
    """Expand a :class:`PlacementSpec` into a concrete :class:`Placement`.

    Args:
        devices: Canonical ``(node, gpu)`` order from the topology.
        ranks_per_device: Ranks per GPU for the ``block`` and
            ``round_robin`` policies (world size = this × #devices);
            ignored by ``explicit``.
        spec: The declarative policy.

    Raises:
        DCudaUsageError: empty device list, non-positive
            ``ranks_per_device``, or an explicit entry naming a device
            outside the topology.
    """
    devices = tuple(devices)
    if not devices:
        raise DCudaUsageError("placement needs at least one device")
    if spec.policy == "explicit":
        index = {dev: i for i, dev in enumerate(devices)}
        rank_device = []
        for rank, loc in enumerate(spec.explicit):
            loc = tuple(loc)
            if loc not in index:
                raise DCudaUsageError(
                    f"explicit placement of rank {rank} names device "
                    f"(node={loc[0]}, gpu={loc[1]}), which is not in the "
                    f"topology ({len(devices)} devices)")
            rank_device.append(index[loc])
        return Placement(devices, rank_device)
    if ranks_per_device < 1:
        raise DCudaUsageError(
            f"ranks_per_device must be >= 1, got {ranks_per_device}")
    total = ranks_per_device * len(devices)
    if spec.policy == "block":
        rank_device = [r // ranks_per_device for r in range(total)]
    else:  # round_robin
        rank_device = [r % len(devices) for r in range(total)]
    return Placement(devices, rank_device)
