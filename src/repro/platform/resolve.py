"""Platform resolution: one MachineConfig → one concrete machine.

:class:`Platform` is the single hardware abstraction the rest of the
stack consumes.  It collapses the declarative pieces — the machine's
:class:`~repro.hw.config.MachineConfig` defaults, an optional
:class:`~repro.platform.topology.Topology`, and a
:class:`~repro.platform.placement.PlacementSpec` — into concrete
answers to the only questions the other layers ask:

* ``hw``: how many nodes, and what does node *i* look like
  (:meth:`Platform.node_spec` → GPU count, per-class GPU/PCIe configs,
  intra-node link)?
* ``net``: which links does a ``src → dst`` message cross
  (:attr:`Platform.routing`), and what does the same-node loopback cost
  (:meth:`Platform.intra_link_of`)?
* ``runtime``/``dcuda``: which ``(node, gpu)`` hosts world rank *r*
  (:meth:`Platform.place`)?
* ``mpi``: what does host staging cost at node *i*
  (:meth:`Platform.pcie_of`)?

A config without a topology resolves to the legacy machine —
``num_nodes`` identical single-GPU nodes on a flat fabric — with the
same defaults everywhere, which is what keeps the golden-timestamp
fixtures bit-identical through this refactor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, List, Optional, Tuple

from ..errors import DCudaUsageError
from .placement import Placement, PlacementSpec, resolve_placement
from .routing import RoutingTable, build_routing
from .topology import (
    DEFAULT_INTRA_LINK,
    Interconnect,
    LinkSpec,
    NodeClass,
    Topology,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hw.config import MachineConfig

__all__ = ["NodeSpec", "Platform"]


@dataclass(frozen=True)
class NodeSpec:
    """Everything :class:`~repro.hw.node.Node` needs to build itself."""

    index: int
    class_name: str
    gpus_per_node: int
    gpu: Any        # GPUConfig
    pcie: Any       # PCIeConfig
    intra_link: LinkSpec


class Platform:
    """The resolved hardware abstraction behind one cluster."""

    def __init__(self, cfg: "MachineConfig"):
        from ..hw.config import GPUConfig, PCIeConfig

        self.cfg = cfg
        topology = cfg.topology
        if topology is None:
            topology = Topology(
                node_classes=(NodeClass(count=cfg.num_nodes),),
                interconnect=Interconnect("flat"))
        elif cfg.num_nodes not in (1, topology.num_nodes):
            # num_nodes=1 is the untouched default; anything else must
            # agree with the topology instead of silently losing.
            raise DCudaUsageError(
                f"MachineConfig.num_nodes={cfg.num_nodes} contradicts its "
                f"topology ({topology.num_nodes} nodes); drop num_nodes "
                "or make them agree")
        self.topology = topology
        self.num_nodes = topology.num_nodes
        self.devices: Tuple[Tuple[int, int], ...] = topology.devices()
        #: Per-node resolved specs, indexed by node.
        self.node_specs: List[NodeSpec] = []
        node = 0
        for nc in topology.node_classes:
            gpu = nc.gpu if nc.gpu is not None else cfg.gpu
            pcie = nc.pcie if nc.pcie is not None else cfg.pcie
            if not isinstance(gpu, GPUConfig):
                raise DCudaUsageError(
                    f"NodeClass {nc.name!r}: gpu must be a GPUConfig, "
                    f"got {type(gpu).__name__}")
            if not isinstance(pcie, PCIeConfig):
                raise DCudaUsageError(
                    f"NodeClass {nc.name!r}: pcie must be a PCIeConfig, "
                    f"got {type(pcie).__name__}")
            intra = (nc.intra_link if nc.intra_link is not None
                     else DEFAULT_INTRA_LINK)
            for _ in range(nc.count):
                self.node_specs.append(NodeSpec(
                    index=node, class_name=nc.name,
                    gpus_per_node=nc.gpus_per_node, gpu=gpu, pcie=pcie,
                    intra_link=intra))
                node += 1
        #: Shortest-path routes, or ``None`` on the flat fast path.
        self.routing: Optional[RoutingTable] = build_routing(
            topology, LinkSpec(bandwidth=cfg.fabric.bandwidth,
                               latency=cfg.fabric.latency))

    # -- hw ----------------------------------------------------------------
    def node_spec(self, node: int) -> NodeSpec:
        """Resolved description of node *node*."""
        if not 0 <= node < self.num_nodes:
            raise DCudaUsageError(
                f"node {node} out of range (platform has "
                f"{self.num_nodes} nodes)")
        return self.node_specs[node]

    @property
    def total_gpus(self) -> int:
        return len(self.devices)

    @property
    def is_flat_single_gpu(self) -> bool:
        """True for the legacy machine shape (the schedule-preserved path)."""
        return (self.routing is None
                and all(spec.gpus_per_node == 1 for spec in self.node_specs))

    # -- net ---------------------------------------------------------------
    def intra_link_of(self, node: int) -> LinkSpec:
        """The intra-node (loopback / NVLink-class) link of node *node*."""
        return self.node_spec(node).intra_link

    # -- mpi ---------------------------------------------------------------
    def pcie_of(self, node: int) -> Any:
        """The PCIe config of node *node* (host-staging DMA costs)."""
        return self.node_spec(node).pcie

    # -- runtime -----------------------------------------------------------
    def place(self, ranks_per_device: int,
              spec: Optional[PlacementSpec] = None) -> Placement:
        """Resolve the machine's placement for *ranks_per_device*.

        Uses the config's :class:`PlacementSpec` unless *spec* overrides
        it, and enforces each GPU's resident-block capacity.
        """
        if spec is None:
            spec = self.cfg.placement
        placement = resolve_placement(self.devices, ranks_per_device, spec)
        for node, gpu in self.devices:
            count = len(placement.ranks_on_device(node, gpu))
            cap = self.node_spec(node).gpu.max_blocks
            if count > cap:
                raise DCudaUsageError(
                    f"placement puts {count} ranks on node{node}.gpu{gpu}, "
                    f"exceeding the device in-flight limit of {cap}; "
                    "dCUDA requires all ranks resident at once")
        return placement

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (f"<Platform {self.num_nodes} nodes / {self.total_gpus} GPUs "
                f"on {self.topology.interconnect.kind}>")
