"""Declarative hardware topology schema.

The paper's Greina testbed — N identical single-GPU nodes on a flat
full-bisection fabric — is one *instance* of a machine, not the only one
worth simulating.  This module turns the hardware shape into **data**:

* :class:`LinkSpec` — one physical link (bandwidth + latency);
* :class:`NodeClass` — a group of identical nodes: GPU count per node,
  optional per-class :class:`~repro.hw.config.GPUConfig` /
  :class:`~repro.hw.config.PCIeConfig` overrides, and the intra-node
  GPU↔GPU link (NVLink-class on dense nodes);
* :class:`Interconnect` — the inter-node network: ``flat`` (today's
  full-bisection model), ``fat_tree`` with an oversubscription factor,
  or ``ring``;
* :class:`Topology` — node classes + interconnect, with convenience
  builders :func:`flat`, :func:`fat_tree`, and :func:`ring`.

The schema deliberately imports nothing from :mod:`repro.hw` — the
hardware layer consumes topologies, not the other way round.  Per-class
GPU/PCIe configs are therefore duck-typed here and validated where they
are instantiated (:mod:`repro.platform.resolve`).

Everything is a frozen dataclass, so topologies hash into the sweep
engine's content-addressed cache like any other config and can be swept
by the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from ..errors import DCudaUsageError

__all__ = [
    "LinkSpec",
    "NodeClass",
    "Interconnect",
    "Topology",
    "INTERCONNECT_KINDS",
    "DEFAULT_INTRA_LINK",
    "flat",
    "fat_tree",
    "ring",
]

INTERCONNECT_KINDS = ("flat", "fat_tree", "ring")


@dataclass(frozen=True)
class LinkSpec:
    """One physical link: streaming bandwidth [B/s] and one-way latency [s]."""

    bandwidth: float
    latency: float

    def __post_init__(self) -> None:
        if not self.bandwidth > 0:
            raise DCudaUsageError(
                f"LinkSpec.bandwidth must be positive, got "
                f"{self.bandwidth!r}")
        if self.latency < 0:
            raise DCudaUsageError(
                f"LinkSpec.latency must be non-negative, got "
                f"{self.latency!r}")


#: The legacy intra-node loopback path (matches the former hard-coded
#: ``_LOOPBACK_*`` constants in :mod:`repro.net.fabric`): what one GPU
#: pays to reach a window on the *same* node when no NVLink-class link is
#: configured.  Kept bit-identical so the default machine replays the
#: golden-timestamp fixtures exactly.
DEFAULT_INTRA_LINK = LinkSpec(bandwidth=12.0e9, latency=0.3e-6)


@dataclass(frozen=True)
class NodeClass:
    """A group of identical nodes.

    Attributes:
        name: Class label (must be unique within a topology); appears in
            component names and observability metrics.
        count: Number of nodes of this class.
        gpus_per_node: GPUs (and PCIe ports) per node.
        gpu: Per-class GPU config override
            (:class:`~repro.hw.config.GPUConfig`); ``None`` inherits
            ``MachineConfig.gpu``.
        pcie: Per-class host↔device link override
            (:class:`~repro.hw.config.PCIeConfig`); ``None`` inherits
            ``MachineConfig.pcie``.
        intra_link: The intra-node GPU↔GPU path (NVLink-class on dense
            nodes); ``None`` means :data:`DEFAULT_INTRA_LINK` — the
            legacy loopback model.
    """

    name: str = "node"
    count: int = 1
    gpus_per_node: int = 1
    gpu: Optional[Any] = None
    pcie: Optional[Any] = None
    intra_link: Optional[LinkSpec] = None

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise DCudaUsageError(
                f"NodeClass.name must be a non-empty string, got "
                f"{self.name!r}")
        if not isinstance(self.count, int) or self.count < 1:
            raise DCudaUsageError(
                f"NodeClass.count must be a positive int, got "
                f"{self.count!r}")
        if not isinstance(self.gpus_per_node, int) or self.gpus_per_node < 1:
            raise DCudaUsageError(
                f"NodeClass.gpus_per_node must be a positive int, got "
                f"{self.gpus_per_node!r}")


@dataclass(frozen=True)
class Interconnect:
    """The inter-node network shape.

    Attributes:
        kind: ``"flat"`` (full bisection, today's model), ``"fat_tree"``
            (two-level: leaf switches + one spine), or ``"ring"``.
        link: Per-hop link spec; ``None`` inherits the machine's
            :class:`~repro.hw.config.FabricConfig` bandwidth/latency —
            which keeps the default ``flat`` interconnect bit-identical
            to the legacy fabric.
        oversubscription: Fat tree only — the factor by which leaf→spine
            uplink capacity is undersized relative to the leaf's
            aggregate downlink capacity (1.0 = full bisection).
        radix: Fat tree only — nodes per leaf switch.
    """

    kind: str = "flat"
    link: Optional[LinkSpec] = None
    oversubscription: float = 1.0
    radix: int = 4

    def __post_init__(self) -> None:
        if self.kind not in INTERCONNECT_KINDS:
            raise DCudaUsageError(
                f"Interconnect.kind must be one of {INTERCONNECT_KINDS}, "
                f"got {self.kind!r}")
        if not self.oversubscription > 0:
            raise DCudaUsageError(
                f"Interconnect.oversubscription must be positive, got "
                f"{self.oversubscription!r}")
        if not isinstance(self.radix, int) or self.radix < 1:
            raise DCudaUsageError(
                f"Interconnect.radix must be a positive int, got "
                f"{self.radix!r}")


@dataclass(frozen=True)
class Topology:
    """A complete machine shape: node classes on an interconnect.

    Node indices are assigned by concatenating the classes in order:
    class 0 owns nodes ``0 .. count0-1``, class 1 the next ``count1``,
    and so on.  Device (GPU) ordinals follow node order, GPUs within a
    node in index order — the canonical order placement policies work in.
    """

    node_classes: Tuple[NodeClass, ...] = field(
        default_factory=lambda: (NodeClass(),))
    interconnect: Interconnect = field(default_factory=Interconnect)

    def __post_init__(self) -> None:
        if isinstance(self.node_classes, list):
            object.__setattr__(self, "node_classes",
                               tuple(self.node_classes))
        if not self.node_classes:
            raise DCudaUsageError("Topology needs at least one NodeClass")
        for nc in self.node_classes:
            if not isinstance(nc, NodeClass):
                raise DCudaUsageError(
                    f"Topology.node_classes entries must be NodeClass, "
                    f"got {nc!r}")
        names = [nc.name for nc in self.node_classes]
        if len(set(names)) != len(names):
            raise DCudaUsageError(
                f"duplicate NodeClass names in topology: {names}")
        if not isinstance(self.interconnect, Interconnect):
            raise DCudaUsageError(
                f"Topology.interconnect must be an Interconnect, got "
                f"{self.interconnect!r}")

    # -- derived shape -----------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return sum(nc.count for nc in self.node_classes)

    @property
    def total_gpus(self) -> int:
        return sum(nc.count * nc.gpus_per_node for nc in self.node_classes)

    def node_class_of(self, node: int) -> NodeClass:
        """The :class:`NodeClass` owning node index *node*."""
        if not 0 <= node < self.num_nodes:
            raise DCudaUsageError(
                f"node {node} out of range (topology has "
                f"{self.num_nodes} nodes)")
        base = 0
        for nc in self.node_classes:
            if node < base + nc.count:
                return nc
            base += nc.count
        raise AssertionError("unreachable")  # pragma: no cover

    def devices(self) -> Tuple[Tuple[int, int], ...]:
        """All ``(node, gpu)`` pairs in canonical placement order."""
        out = []
        node = 0
        for nc in self.node_classes:
            for _ in range(nc.count):
                out.extend((node, g) for g in range(nc.gpus_per_node))
                node += 1
        return tuple(out)


# -- convenience builders --------------------------------------------------
def flat(num_nodes: int = 1, gpus_per_node: int = 1,
         link: Optional[LinkSpec] = None,
         intra_link: Optional[LinkSpec] = None) -> Topology:
    """A full-bisection machine of identical nodes (the paper's shape)."""
    return Topology(
        node_classes=(NodeClass(count=num_nodes,
                                gpus_per_node=gpus_per_node,
                                intra_link=intra_link),),
        interconnect=Interconnect("flat", link=link))


def fat_tree(num_nodes: int, gpus_per_node: int = 1,
             oversubscription: float = 1.0, radix: int = 4,
             link: Optional[LinkSpec] = None,
             intra_link: Optional[LinkSpec] = None) -> Topology:
    """A two-level fat tree: ``radix`` nodes per leaf, one spine."""
    return Topology(
        node_classes=(NodeClass(count=num_nodes,
                                gpus_per_node=gpus_per_node,
                                intra_link=intra_link),),
        interconnect=Interconnect("fat_tree", link=link,
                                  oversubscription=oversubscription,
                                  radix=radix))


def ring(num_nodes: int, gpus_per_node: int = 1,
         link: Optional[LinkSpec] = None,
         intra_link: Optional[LinkSpec] = None) -> Topology:
    """A unidirectionally-indexed ring; routes take the shorter arc."""
    return Topology(
        node_classes=(NodeClass(count=num_nodes,
                                gpus_per_node=gpus_per_node,
                                intra_link=intra_link),),
        interconnect=Interconnect("ring", link=link))
