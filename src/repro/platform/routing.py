"""Routing tables: topology graphs + deterministic shortest paths.

The interconnect kinds expand into a small directed graph of *ports*
(node NICs, leaf switches, a spine) connected by directed links, and a
breadth-first shortest-path table maps every ``(src node, dst node)``
pair to the sequence of links its messages traverse.  The fabric then
charges **every hop**: each directed link is a virtual-time fluid-flow
:class:`~repro.sim.link.FairShareLink` shared by all messages crossing
it, so congestion (fat-tree oversubscription, ring neighbor traffic)
emerges from routing rather than being scripted.

Determinism: adjacency lists are built in a fixed order and BFS visits
them in that order, so equal-length paths always resolve the same way
(rings break ties toward the increasing-index direction).  The table is
a pure function of the topology — two clusters built from equal
topologies route identically.

``flat`` interconnects return no table: the full-bisection fabric keeps
the calibrated single-hop LogGP model (sender NIC serialization + one
wire latency), which is what the paper's Greina testbed is calibrated
against and what the golden-timestamp fixtures pin down.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import DCudaUsageError
from .topology import LinkSpec, Topology

__all__ = ["RouteLink", "RoutingTable", "build_routing"]


@dataclass(frozen=True)
class RouteLink:
    """One directed physical link of the interconnect graph."""

    name: str
    bandwidth: float  # B/s
    latency: float    # s, one hop


class RoutingTable:
    """Shortest-path routes over the interconnect graph.

    Attributes:
        links: ``name -> RouteLink`` for every directed link.
        routes: ``(src node, dst node) -> tuple of link names`` for every
            ordered pair of distinct nodes.
    """

    def __init__(self, links: Dict[str, RouteLink],
                 routes: Dict[Tuple[int, int], Tuple[str, ...]]):
        self.links = links
        self.routes = routes

    def route(self, src: int, dst: int) -> Tuple[str, ...]:
        """Link names the ``src -> dst`` message traverses, in order."""
        try:
            return self.routes[(src, dst)]
        except KeyError:
            raise DCudaUsageError(
                f"no route from node {src} to node {dst}") from None

    def hops(self, src: int, dst: int) -> int:
        return len(self.route(src, dst))

    def path_latency(self, src: int, dst: int) -> float:
        """Sum of per-hop latencies on the ``src -> dst`` route."""
        return sum(self.links[name].latency for name in self.route(src, dst))

    def bottleneck_bandwidth(self, src: int, dst: int) -> float:
        """Minimum link bandwidth along the ``src -> dst`` route."""
        return min(self.links[name].bandwidth
                   for name in self.route(src, dst))


def _bfs_routes(num_nodes: int, links: Dict[str, RouteLink],
                adjacency: Dict[str, List[Tuple[str, str]]]
                ) -> Dict[Tuple[int, int], Tuple[str, ...]]:
    """All-pairs node routes via per-source BFS (deterministic order)."""
    routes: Dict[Tuple[int, int], Tuple[str, ...]] = {}
    for src in range(num_nodes):
        start = f"n{src}"
        # prev[vertex] = (previous vertex, link taken into vertex)
        prev: Dict[str, Tuple[str, str]] = {start: ("", "")}
        queue = deque([start])
        while queue:
            vertex = queue.popleft()
            for nxt, link_name in adjacency.get(vertex, ()):
                if nxt not in prev:
                    prev[nxt] = (vertex, link_name)
                    queue.append(nxt)
        for dst in range(num_nodes):
            if dst == src:
                continue
            target = f"n{dst}"
            if target not in prev:
                raise DCudaUsageError(
                    f"interconnect graph is disconnected: no path "
                    f"n{src} -> n{dst}")
            path: List[str] = []
            vertex = target
            while vertex != start:
                vertex, link_name = prev[vertex]
                path.append(link_name)
            routes[(src, dst)] = tuple(reversed(path))
    return routes


def _fat_tree_graph(num_nodes: int, link: LinkSpec, oversubscription: float,
                    radix: int) -> Tuple[Dict[str, RouteLink],
                                         Dict[str, List[Tuple[str, str]]]]:
    """Two-level fat tree: ``radix`` nodes per leaf switch, one spine.

    Leaf→spine uplinks aggregate the leaf's ``radix`` downlinks and are
    undersized by the oversubscription factor — ``k = 1`` is full
    bisection, ``k = 4`` concentrates 4 B/s of injection on 1 B/s of
    uplink, and cross-leaf senders share it max-min fairly.
    """
    links: Dict[str, RouteLink] = {}
    adjacency: Dict[str, List[Tuple[str, str]]] = {}

    def add(u: str, v: str, bandwidth: float, latency: float) -> None:
        name = f"{u}-{v}"
        links[name] = RouteLink(name, bandwidth, latency)
        adjacency.setdefault(u, []).append((v, name))

    uplink_bw = radix * link.bandwidth / oversubscription
    num_leaves = (num_nodes + radix - 1) // radix
    for node in range(num_nodes):
        leaf = f"leaf{node // radix}"
        add(f"n{node}", leaf, link.bandwidth, link.latency)
        add(leaf, f"n{node}", link.bandwidth, link.latency)
    if num_leaves > 1:
        for li in range(num_leaves):
            leaf = f"leaf{li}"
            add(leaf, "spine", uplink_bw, link.latency)
            add("spine", leaf, uplink_bw, link.latency)
    return links, adjacency


def _ring_graph(num_nodes: int, link: LinkSpec
                ) -> Tuple[Dict[str, RouteLink],
                           Dict[str, List[Tuple[str, str]]]]:
    """Bidirectional ring: node *i* links to ``i±1 (mod N)``.

    The increasing-index direction is enumerated first, so even-size
    rings break the antipodal tie clockwise.
    """
    links: Dict[str, RouteLink] = {}
    adjacency: Dict[str, List[Tuple[str, str]]] = {}

    def add(u: int, v: int) -> None:
        name = f"n{u}-n{v}"
        links[name] = RouteLink(name, link.bandwidth, link.latency)
        adjacency.setdefault(f"n{u}", []).append((f"n{v}", name))

    for node in range(num_nodes):
        add(node, (node + 1) % num_nodes)
        add(node, (node - 1) % num_nodes)
    return links, adjacency


def build_routing(topology: Topology,
                  default_link: LinkSpec) -> Optional[RoutingTable]:
    """The routing table for *topology*, or ``None`` for ``flat``.

    Args:
        topology: The machine shape.
        default_link: Bandwidth/latency used when the interconnect spec
            leaves ``link`` unset (the machine's calibrated
            :class:`~repro.hw.config.FabricConfig` values).
    """
    ic = topology.interconnect
    if ic.kind == "flat":
        return None
    link = ic.link if ic.link is not None else default_link
    num_nodes = topology.num_nodes
    if ic.kind == "fat_tree":
        links, adjacency = _fat_tree_graph(num_nodes, link,
                                           ic.oversubscription, ic.radix)
    elif ic.kind == "ring":
        if num_nodes < 2:
            # A 1-node ring has no wire traffic; an empty table suffices.
            return RoutingTable({}, {})
        links, adjacency = _ring_graph(num_nodes, link)
    else:  # pragma: no cover - Interconnect.__post_init__ rejects this
        raise DCudaUsageError(f"unknown interconnect kind {ic.kind!r}")
    return RoutingTable(links, _bfs_routes(num_nodes, links, adjacency))
