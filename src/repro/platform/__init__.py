"""The platform layer: declarative machine shapes behind one abstraction.

This package makes the hardware model *data* instead of code:

* :mod:`repro.platform.topology` — the declarative schema
  (:class:`LinkSpec`, :class:`NodeClass`, :class:`Interconnect`,
  :class:`Topology`) plus the :func:`flat` / :func:`fat_tree` /
  :func:`ring` builders;
* :mod:`repro.platform.routing` — deterministic shortest-path routing
  tables over the interconnect graph;
* :mod:`repro.platform.placement` — rank → (node, GPU) policies
  (``block``, ``round_robin``, ``explicit``);
* :mod:`repro.platform.resolve` — :class:`Platform`, the resolved
  hardware abstraction every other layer consumes.

Attach a topology and placement to a
:class:`~repro.hw.config.MachineConfig`::

    from repro.hw import greina
    from repro.platform import LinkSpec, fat_tree

    cfg = greina(topology=fat_tree(num_nodes=8, gpus_per_node=4,
                                   oversubscription=2.0,
                                   intra_link=LinkSpec(50e9, 0.1e-6)))

A config without a topology is the paper's machine: ``num_nodes``
identical single-GPU nodes on a flat full-bisection fabric, replayed
bit-identically against the golden-timestamp fixtures.
"""

from .placement import (
    PLACEMENT_POLICIES,
    Placement,
    PlacementSpec,
    resolve_placement,
)
from .routing import RouteLink, RoutingTable, build_routing
from .topology import (
    DEFAULT_INTRA_LINK,
    INTERCONNECT_KINDS,
    Interconnect,
    LinkSpec,
    NodeClass,
    Topology,
    fat_tree,
    flat,
    ring,
)
from .resolve import NodeSpec, Platform

__all__ = [
    "LinkSpec", "NodeClass", "Interconnect", "Topology",
    "INTERCONNECT_KINDS", "DEFAULT_INTRA_LINK",
    "flat", "fat_tree", "ring",
    "RouteLink", "RoutingTable", "build_routing",
    "PlacementSpec", "Placement", "PLACEMENT_POLICIES",
    "resolve_placement",
    "NodeSpec", "Platform",
]
