"""The communication-backend protocol: where RMA operations initiate.

The paper's runtime initiates every remote memory access on the *host*:
a device rank enqueues a command over PCIe and the block manager issues
the MPI operations (the proxy design of §III).  Later GPU-centric
runtimes move that initiation point, and :class:`CommBackend` is the
seam that makes the choice pluggable behind the unchanged device API
(``put_notify`` / ``get_notify`` / ``wait_notifications`` / ``flush`` /
``barrier``):

* ``proxy``  — the paper's block-manager + PCIe-queue path (default,
  schedule-preserving: the golden timestamps are bit-identical),
* ``device`` — symmetric-heap RMA issued directly from the GPU (NVSHMEM
  style): the rank pays IOMMU/ATS translation plus the NIC MMIO
  doorbell on its own SM issue unit and skips the host round trip,
* ``stream`` — deferred triggered ops: the device enqueues a descriptor
  on a per-rank stream and the fabric's triggered-op engine fires it
  once the trigger commits, in stream FIFO order.

A backend owns exactly the *initiation and completion* of puts and
gets: how the payload reaches the target window, who delivers the
notification, and who retires the origin-side flush id.  Everything
else — windows, collectives, notification matching, flush waiting — is
backend-independent, which is what the differential harness in
``tests/comm`` verifies: all app-visible observables must be
semantically equivalent across backends, only the timestamps (each
backend's cost model, pinned by its golden fixture) may differ.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Dict, Generator

import numpy as np

from ..dcuda.notifications import deliver
from ..runtime.state import RankState
from ..sim import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dcuda.device_api import DRank
    from ..dcuda.window import Window
    from ..runtime.system import DCudaRuntime

__all__ = ["CommBackend"]


class CommBackend(ABC):
    """One communication scheme: put/get initiation, notify, flush retire."""

    #: Registry key; also ``MachineConfig.comm_backend``'s value.
    name = "?"

    def __init__(self, runtime: "DCudaRuntime"):
        self.runtime = runtime
        self.env = runtime.env
        self.cfg = runtime.cfg
        self.fabric = runtime.cluster.fabric

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Spawn backend-owned processes; called after the runtime systems
        started (default: nothing to spawn)."""

    # -- initiation (the per-backend core) ---------------------------------
    @abstractmethod
    def put(self, drank: "DRank", win: "Window", target_rank: int,
            target_offset: int, src: np.ndarray, tag: int, flush_id: int,
            notify: bool) -> Generator[Event, Any, None]:
        """Initiate one (optionally notified) put.

        Runs on the issuing rank's process; must return as soon as the
        operation is *issued* — completion is observed through the flush
        counter (retired via :meth:`_advance_flush`) and the target's
        notification.  Validation (``win.check_target``) and flush-id
        allocation already happened in the device API.
        """

    @abstractmethod
    def get(self, drank: "DRank", win: "Window", target_rank: int,
            target_offset: int, dst: np.ndarray, tag: int, flush_id: int,
            notify: bool) -> Generator[Event, Any, None]:
        """Initiate one (optionally notified) get; notification is
        delivered at the *origin* with the target as its source."""

    # -- cost hooks --------------------------------------------------------
    def describe_costs(self) -> Dict[str, float]:
        """The backend's cost-model knobs, for reports and docs."""
        return {}

    # -- shared mechanics --------------------------------------------------
    def _advance_flush(self, state: RankState, flush_id: int,
                       delay: float = 0.0) -> Generator[Event, Any, None]:
        """Retire *flush_id* on the in-order tracker; publish + wake after
        *delay* (the backend's completion-handling cost) when the counter
        actually advanced."""
        advanced = state.flush_tracker.complete(flush_id)
        if not advanced:
            return
        if delay > 0.0:
            yield delay
        state.flush_counter = max(state.flush_counter,
                                  state.flush_tracker.counter)
        state.flush_signal.fire()

    def _notify(self, target_state: RankState, global_win_id, source: int,
                tag: int) -> Generator[Event, Any, None]:
        """Deliver one notification (single shared delivery point)."""
        return deliver(target_state, global_win_id, source, tag)

    def _write_window(self, global_win_id, target_rank: int,
                      target_offset: int, data: np.ndarray) -> None:
        """Store an arrived put payload into the target's window.

        Raises the same typed errors as the proxy's target side
        (``BlockManager.incoming_put``) so fault outcomes are
        backend-independent: ``IndexError`` out of bounds, ``TypeError``
        on dtype mismatch.
        """
        system = self.runtime.system_of(target_rank)
        buf = system.window_buffer(global_win_id, target_rank)
        count = int(data.size)
        if target_offset + count > buf.size:
            raise IndexError(
                f"put [{target_offset}:{target_offset + count}]"
                f" out of bounds for window {global_win_id} of rank "
                f"{target_rank} ({buf.size} elements)")
        if count:
            if data.dtype != buf.dtype:
                raise TypeError(
                    f"put dtype {data.dtype} does not match window "
                    f"{global_win_id} dtype {buf.dtype}")
            buf[target_offset:target_offset + count] = data

    def _read_window(self, global_win_id, target_rank: int,
                     target_offset: int, count: int) -> np.ndarray:
        """Snapshot a get's source region from the target's window
        (``IndexError`` out of bounds, mirroring ``incoming_get``)."""
        system = self.runtime.system_of(target_rank)
        buf = system.window_buffer(global_win_id, target_rank)
        if target_offset + count > buf.size:
            raise IndexError(
                f"get [{target_offset}:{target_offset + count}]"
                f" out of bounds for window {global_win_id} of rank "
                f"{target_rank} ({buf.size} elements)")
        return np.ascontiguousarray(buf[target_offset:target_offset + count])
