"""The stream-triggered backend: deferred ops fired by the fabric.

HPE stream-triggered / MPI partitioned-communication style: the issuing
rank assembles a triggered-op descriptor (one cheap SM charge), posts
the trigger over PCIe (a single mapped write — the descriptor itself
was pre-staged), and moves on.  A per-rank triggered-op engine — the
fabric-side agent guarding the stream — fires each descriptor
``trigger_latency`` after its trigger commits, strictly in stream FIFO
order: an op does not fire until its predecessor finished NIC injection
(for gets: until the request left).  Completion retires on the engine
(``completion_cost``), not on the host.

Relative to the proxy this removes the host from the data path (no
``poll_latency``, no worker occupancy) while keeping initiation cheap on
the device; relative to device-initiated it buys back per-op SM cost at
the price of the trigger-firing latency and strict FIFO ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, Optional

import numpy as np

from ..sim import Event, Store
from .base import CommBackend

__all__ = ["StreamBackend"]


@dataclass
class _StreamOp:
    """One deferred descriptor on a rank's triggered-op stream."""

    kind: str                    # "put" | "get" | "notify"
    gid: Any                     # global window id
    origin_rank: int
    target_rank: int
    target_offset: int = 0
    data: Optional[np.ndarray] = None   # put payload snapshot
    dst: Optional[np.ndarray] = None    # get destination
    count: int = 0
    tag: int = 0
    notify: bool = True
    flush_id: int = 0
    #: Rank whose queue receives the notification (the target for puts,
    #: the origin itself for gets and shared-get self-notifications).
    notify_rank: int = field(default=-1)


class StreamBackend(CommBackend):
    """Deferred triggered ops on per-rank streams."""

    name = "stream"

    def __init__(self, runtime):
        super().__init__(runtime)
        self._streams: Dict[int, Store] = {}

    def start(self) -> None:
        """One stream + one triggered-op engine per rank."""
        for system in self.runtime.systems:
            for state in system.states:
                stream = Store(self.env,
                               name=f"stream:r{state.world_rank}")
                self._streams[state.world_rank] = stream
                self.env.process(self._engine(state, stream),
                                 name=f"steng:r{state.world_rank}")

    # -- device side: enqueue + trigger ------------------------------------
    def _enqueue(self, drank, op: _StreamOp) -> Generator[Event, Any, None]:
        """Descriptor assembly on the SM, trigger post over PCIe."""
        sc = self.cfg.stream_comm
        yield from drank.device.issue_use(drank.block, sc.enqueue_cost,
                                          kind="comm",
                                          detail="stream-enqueue")
        yield from drank.state.pcie.mapped_post()
        yield self._streams[drank.world_rank].put(op)

    def put(self, drank, win, target_rank: int, target_offset: int,
            src: np.ndarray, tag: int, flush_id: int,
            notify: bool) -> Generator[Event, Any, None]:
        if drank._is_shared(target_rank):
            # Local data movement happens eagerly on the device; only the
            # notification + flush retirement defer to the stream, so they
            # order behind earlier remote ops of this rank.
            yield from drank._shared_copy_put(win, target_rank,
                                              target_offset, src)
            op = _StreamOp(kind="notify", gid=win.global_id,
                           origin_rank=drank.world_rank,
                           target_rank=target_rank, tag=tag, notify=notify,
                           flush_id=flush_id, notify_rank=target_rank)
        else:
            op = _StreamOp(kind="put", gid=win.global_id,
                           origin_rank=drank.world_rank,
                           target_rank=target_rank,
                           target_offset=target_offset,
                           data=np.array(src, copy=True),
                           count=int(src.size), tag=tag, notify=notify,
                           flush_id=flush_id, notify_rank=target_rank)
        yield from self._enqueue(drank, op)

    def get(self, drank, win, target_rank: int, target_offset: int,
            dst: np.ndarray, tag: int, flush_id: int,
            notify: bool) -> Generator[Event, Any, None]:
        if drank._is_shared(target_rank):
            yield from drank._shared_copy_get(win, target_rank,
                                              target_offset, dst)
            op = _StreamOp(kind="notify", gid=win.global_id,
                           origin_rank=target_rank,
                           target_rank=drank.world_rank, tag=tag,
                           notify=notify, flush_id=flush_id,
                           notify_rank=drank.world_rank)
        else:
            op = _StreamOp(kind="get", gid=win.global_id,
                           origin_rank=drank.world_rank,
                           target_rank=target_rank,
                           target_offset=target_offset, dst=dst,
                           count=int(dst.size), tag=tag, notify=notify,
                           flush_id=flush_id, notify_rank=drank.world_rank)
        yield from self._enqueue(drank, op)

    # -- fabric side: the triggered-op engine ------------------------------
    def _engine(self, state, stream: Store):
        """Fire descriptors in FIFO order as their triggers commit."""
        sc = self.cfg.stream_comm
        src_node = state.node.index
        while True:
            op = yield stream.get()
            yield sc.trigger_latency
            if op.kind == "put":
                target_node = self.runtime.node_of_rank(op.target_rank)
                injected = self.env.event(name=f"sinj:r{op.origin_rank}")
                arrival = self.fabric.transmit(
                    src_node, target_node, float(op.data.nbytes),
                    mode="d2d", injected=injected)
                self.env.process(self._deliver_put(arrival, op),
                                 name=f"sputin:r{op.target_rank}")
                # FIFO: the next descriptor fires only once this payload
                # finished NIC injection; the flush retires then too
                # (local completion), off the engine's critical path.
                yield injected
                self.env.process(
                    self._retire(state, op.flush_id),
                    name=f"sputdone:r{op.origin_rank}")
            elif op.kind == "get":
                target_node = self.runtime.node_of_rank(op.target_rank)
                injected = self.env.event(name=f"sinj:r{op.origin_rank}")
                request = self.fabric.transmit(
                    src_node, target_node, sc.request_bytes, mode="d2d",
                    injected=injected)
                self.env.process(
                    self._serve_get(state, request, src_node, target_node,
                                    op),
                    name=f"sgetdone:r{op.origin_rank}")
                yield injected
            else:  # "notify": shared-memory op, data already moved
                if op.notify:
                    yield from self._notify(
                        self.runtime.state_of(op.notify_rank), op.gid,
                        op.origin_rank, op.tag)
                yield from self._advance_flush(state, op.flush_id,
                                               sc.completion_cost)

    def _deliver_put(self, arrival: Event, op: _StreamOp):
        """Target side of a fired put: store + notify on wire arrival."""
        yield arrival
        self._write_window(op.gid, op.target_rank, op.target_offset,
                           op.data)
        if op.notify:
            yield from self._notify(self.runtime.state_of(op.notify_rank),
                                    op.gid, op.origin_rank, op.tag)

    def _serve_get(self, state, request: Event, src_node: int,
                   target_node: int, op: _StreamOp):
        """Remote side of a fired get: read the window, send data back,
        deliver the self-notification, retire the flush."""
        yield request
        snapshot = self._read_window(op.gid, op.target_rank,
                                     op.target_offset, op.count)
        yield self.fabric.transmit(target_node, src_node,
                                   float(snapshot.nbytes), mode="d2d")
        op.dst[: snapshot.size] = snapshot
        if op.notify:
            yield from self._notify(state, op.gid, op.target_rank, op.tag)
        yield from self._advance_flush(state, op.flush_id,
                                       self.cfg.stream_comm.completion_cost)

    def _retire(self, state, flush_id: int):
        yield from self._advance_flush(state, flush_id,
                                       self.cfg.stream_comm.completion_cost)

    def describe_costs(self) -> Dict[str, float]:
        sc = self.cfg.stream_comm
        return {"enqueue_cost": sc.enqueue_cost,
                "trigger_latency": sc.trigger_latency,
                "completion_cost": sc.completion_cost,
                "request_bytes": sc.request_bytes}
