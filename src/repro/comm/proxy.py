"""The proxy backend: the paper's host block-manager path (§III).

This is the seed implementation extracted verbatim behind the
:class:`~repro.comm.base.CommBackend` interface — every ``yield`` the
device API performed before the extraction happens here in the same
order with the same arguments, so the event schedule (and therefore the
22 golden timestamps) is bit-identical.  The actual data movement stays
where it always lived: shared-memory ranks copy on-device and loop only
the notification through the host; distributed ranks enqueue the full
command over PCIe for the block manager to turn into MPI operations.
"""

from __future__ import annotations

from typing import Any, Dict, Generator

import numpy as np

from ..runtime.commands import GetCommand, NotifyCommand, PutCommand
from ..sim import Event
from .base import CommBackend

__all__ = ["ProxyBackend"]


class ProxyBackend(CommBackend):
    """Host-initiated RMA: device → PCIe command queue → block manager."""

    name = "proxy"

    def put(self, drank, win, target_rank: int, target_offset: int,
            src: np.ndarray, tag: int, flush_id: int,
            notify: bool) -> Generator[Event, Any, None]:
        if drank._is_shared(target_rank):
            # Shared-memory put: the device moves the data itself; only
            # the notification loops through the host (§III-B).
            yield from drank._shared_copy_put(win, target_rank,
                                              target_offset, src)
            yield from drank._assemble()
            yield from drank.state.cmd_queue.enqueue(NotifyCommand(
                drank.world_rank, win.global_id, target_rank, tag,
                flush_id, notify))
        else:
            yield from drank._assemble()
            # Snapshot at issue time: the block manager isends later, and
            # the application may legitimately start its next compute phase
            # (overwriting the source) as soon as its own waits complete.
            yield from drank.state.cmd_queue.enqueue(PutCommand(
                drank.world_rank, win.global_id, target_rank,
                target_offset, int(src.size), src.copy(), tag,
                flush_id, notify))

    def get(self, drank, win, target_rank: int, target_offset: int,
            dst: np.ndarray, tag: int, flush_id: int,
            notify: bool) -> Generator[Event, Any, None]:
        if drank._is_shared(target_rank):
            # Shared-memory get: device-side copy, self-notification via
            # the host (origin_rank is the *target* so the notification
            # arrives at this rank with the target as its source).
            yield from drank._shared_copy_get(win, target_rank,
                                              target_offset, dst)
            yield from drank._assemble()
            yield from drank.state.cmd_queue.enqueue(NotifyCommand(
                target_rank, win.global_id, drank.world_rank, tag,
                flush_id, notify))
        else:
            yield from drank._assemble()
            yield from drank.state.cmd_queue.enqueue(GetCommand(
                drank.world_rank, win.global_id, target_rank,
                target_offset, int(dst.size), dst, tag, flush_id,
                notify))

    def describe_costs(self) -> Dict[str, float]:
        host = self.cfg.host
        return {"command_assembly": self.cfg.devicelib.command_assembly,
                "host.poll_latency": host.poll_latency,
                "host.command_cost": host.command_cost,
                "host.request_cost": host.request_cost}
