"""The device-initiated backend: symmetric-heap RMA from the GPU.

NVSHMEM/IBGDA-style initiation: the issuing rank translates the target
address (IOMMU/ATS) and rings the NIC doorbell itself, both charged on
its SM issue unit, and the NIC moves the payload device-to-device with
no host round trip — no PCIe command queue, no block-manager dequeue,
no ``poll_latency``.  Completion is device-side too: retiring a flush id
costs one CQE poll (``completion_cost``) instead of the proxy's mapped
PCIe write.

The host block managers keep running (window creation, barriers, and
finish are still host collectives); they simply never see a put or get.
Because each operation rides its own NIC transaction, two puts from the
same origin may overtake each other on the wire — notification *matching*
semantics are unaffected (the matcher orders by arrival), which is
exactly the order-insensitivity the differential harness checks.
"""

from __future__ import annotations

from typing import Any, Dict, Generator

import numpy as np

from ..sim import Event
from .base import CommBackend

__all__ = ["DeviceBackend"]


class DeviceBackend(CommBackend):
    """GPU-initiated RMA over a symmetric heap."""

    name = "device"

    # -- puts --------------------------------------------------------------
    def put(self, drank, win, target_rank: int, target_offset: int,
            src: np.ndarray, tag: int, flush_id: int,
            notify: bool) -> Generator[Event, Any, None]:
        dc = self.cfg.device_comm
        if drank._is_shared(target_rank):
            # Same-GPU ranks: plain device copy; only the (device-side)
            # completion path runs — no doorbell, the "NIC" is never
            # involved.
            yield from drank._shared_copy_put(win, target_rank,
                                              target_offset, src)
            yield from drank.device.initiate_rma(
                drank.block, dc.translation_cost, detail="rma-shared-put")
            self.env.process(
                self._retire_shared(drank.state,
                                    self.runtime.state_of(target_rank),
                                    win.global_id, drank.world_rank,
                                    target_rank, tag, flush_id, notify),
                name=f"dput:r{drank.world_rank}")
            return
        snapshot = np.array(src, copy=True)
        yield from drank.device.initiate_rma(
            drank.block, dc.translation_cost + dc.doorbell_cost,
            detail="rma-put")
        self.fabric.ring_doorbell(drank.node.index)
        injected = self.env.event(name=f"dinj:r{drank.world_rank}")
        arrival = self.fabric.transmit(
            drank.node.index, self.runtime.node_of_rank(target_rank),
            float(snapshot.nbytes), mode="d2d", injected=injected)
        self.env.process(
            self._retire_put(drank.state, flush_id, injected),
            name=f"dputdone:r{drank.world_rank}")
        self.env.process(
            self._deliver_put(arrival, win.global_id, drank.world_rank,
                              target_rank, target_offset, snapshot, tag,
                              notify),
            name=f"dputin:r{target_rank}")

    def _retire_put(self, state, flush_id: int, injected: Event):
        """Origin side: the flush retires once the NIC accepted the
        payload (local completion), after one CQE-poll charge."""
        yield injected
        yield from self._advance_flush(state, flush_id,
                                       self.cfg.device_comm.completion_cost)

    def _deliver_put(self, arrival: Event, gid, origin_rank: int,
                     target_rank: int, target_offset: int,
                     snapshot: np.ndarray, tag: int, notify: bool):
        """Target side: on wire arrival the NIC stores straight into the
        window and appends the notification — no host handler."""
        yield arrival
        self._write_window(gid, target_rank, target_offset, snapshot)
        if notify:
            yield from self._notify(self.runtime.state_of(target_rank),
                                    gid, origin_rank, tag)

    def _retire_shared(self, state, target_state, gid, origin_rank: int,
                       target_rank: int, tag: int, flush_id: int,
                       notify: bool):
        if notify:
            yield from self._notify(target_state, gid, origin_rank, tag)
        yield from self._advance_flush(state, flush_id,
                                       self.cfg.device_comm.completion_cost)

    # -- gets --------------------------------------------------------------
    def get(self, drank, win, target_rank: int, target_offset: int,
            dst: np.ndarray, tag: int, flush_id: int,
            notify: bool) -> Generator[Event, Any, None]:
        dc = self.cfg.device_comm
        if drank._is_shared(target_rank):
            yield from drank._shared_copy_get(win, target_rank,
                                              target_offset, dst)
            yield from drank.device.initiate_rma(
                drank.block, dc.translation_cost, detail="rma-shared-get")
            self.env.process(
                self._retire_shared(drank.state, drank.state, win.global_id,
                                    target_rank, drank.world_rank, tag,
                                    flush_id, notify),
                name=f"dget:r{drank.world_rank}")
            return
        yield from drank.device.initiate_rma(
            drank.block, dc.translation_cost + dc.doorbell_cost,
            detail="rma-get")
        self.fabric.ring_doorbell(drank.node.index)
        self.env.process(
            self._remote_get(drank.state, win.global_id, drank.node.index,
                             target_rank, target_offset, dst, tag, flush_id,
                             notify),
            name=f"dgetdone:r{drank.world_rank}")

    def _remote_get(self, state, gid, src_node: int, target_rank: int,
                    target_offset: int, dst: np.ndarray, tag: int,
                    flush_id: int, notify: bool):
        """One NIC-driven RDMA read: request descriptor out, data back."""
        dc = self.cfg.device_comm
        target_node = self.runtime.node_of_rank(target_rank)
        yield self.fabric.transmit(src_node, target_node, dc.request_bytes,
                                   mode="d2d")
        snapshot = self._read_window(gid, target_rank, target_offset,
                                     int(dst.size))
        yield self.fabric.transmit(target_node, src_node,
                                   float(snapshot.nbytes), mode="d2d")
        dst[: snapshot.size] = snapshot
        if notify:
            yield from self._notify(state, gid, target_rank, tag)
        yield from self._advance_flush(state, flush_id, dc.completion_cost)

    def describe_costs(self) -> Dict[str, float]:
        dc = self.cfg.device_comm
        return {"doorbell_cost": dc.doorbell_cost,
                "translation_cost": dc.translation_cost,
                "completion_cost": dc.completion_cost,
                "request_bytes": dc.request_bytes}
