"""Pluggable communication backends (RMA initiation schemes).

Selected by ``MachineConfig.comm_backend``; see :mod:`repro.comm.base`
for the protocol and the three implementations:

* :class:`~repro.comm.proxy.ProxyBackend` — host block manager (paper),
* :class:`~repro.comm.device.DeviceBackend` — GPU-initiated symmetric
  heap,
* :class:`~repro.comm.stream.StreamBackend` — deferred stream-triggered
  ops.
"""

from ..errors import DCudaUsageError
from ..hw.config import COMM_BACKENDS
from .base import CommBackend
from .device import DeviceBackend
from .proxy import ProxyBackend
from .stream import StreamBackend

__all__ = ["COMM_BACKENDS", "CommBackend", "ProxyBackend", "DeviceBackend",
           "StreamBackend", "build_backend"]

_REGISTRY = {cls.name: cls
             for cls in (ProxyBackend, DeviceBackend, StreamBackend)}
assert tuple(sorted(_REGISTRY)) == tuple(sorted(COMM_BACKENDS))


def build_backend(name: str, runtime) -> CommBackend:
    """Instantiate the backend *name* for *runtime*.

    Raises:
        DCudaUsageError: *name* is not a registered backend.
    """
    cls = _REGISTRY.get(name)
    if cls is None:
        raise DCudaUsageError(
            f"unknown comm backend {name!r}; expected one of "
            f"{COMM_BACKENDS}")
    return cls(runtime)
