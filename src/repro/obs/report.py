"""Overlap-efficiency report computed from traced activity intervals.

Fig. 1 of the paper is a picture of per-block timelines: while one
over-subscribed rank waits for notifications, co-resident ranks keep the SMs
busy — communication is *hidden* under computation.  This module turns the
recorded intervals into that number: for every rank, the fraction of its
communication + wait time that overlaps some other co-resident rank's
compute activity on the same device.

``hidden / (comm + wait)`` per rank is exactly the overlap efficiency the
evaluation section reasons about: 1.0 means communication is fully hidden
(perfect overlap, the copy workload of Fig. 8); fractions below 1.0 expose
communication on the critical path (the compute-bound Newton workload of
Fig. 7, where the matcher itself steals issue slots).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..bench.table import Table
from ..sim.trace import Tracer, merge_intervals, overlap_time, total_time
from .metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["OverlapRow", "overlap_rows", "overlap_fractions",
           "overlap_report", "metrics_report"]

#: Interval kinds that occupy a block's issue unit with useful work.
COMPUTE_KINDS = ("compute", "match")
#: Interval kinds during which a block makes no compute progress.
HIDDEN_KINDS = ("comm", "wait")


@dataclass(frozen=True)
class OverlapRow:
    """Per-rank overlap accounting (all times in simulated seconds)."""

    actor: str
    device: str
    compute: float       # union of compute+match intervals
    comm: float          # union of comm intervals
    wait: float          # union of wait intervals
    hidden: float        # comm∪wait time overlapped by peers' compute


def _block_device(actor: str) -> Optional[str]:
    """Device prefix of a block actor (``node0.gpu.b3`` → ``node0.gpu``)."""
    head, sep, tail = actor.rpartition(".b")
    if sep and tail.isdigit():
        return head
    return None


def _spans(tracer: Tracer, actor: str,
           kinds: Tuple[str, ...]) -> List[Tuple[float, float]]:
    return [(iv.start, iv.end) for iv in tracer.intervals
            if iv.actor == actor and iv.kind in kinds]


def overlap_rows(tracer: Tracer) -> List[OverlapRow]:
    """One row per traced block, grouped by device, in actor order."""
    devices: Dict[str, List[str]] = {}
    for actor in tracer.actors():
        device = _block_device(actor)
        if device is not None:
            devices.setdefault(device, []).append(actor)
    rows: List[OverlapRow] = []
    for device in sorted(devices):
        blocks = devices[device]
        compute_spans = {a: _spans(tracer, a, COMPUTE_KINDS) for a in blocks}
        for actor in blocks:
            own_hidden_spans = merge_intervals(
                _spans(tracer, actor, HIDDEN_KINDS))
            peer_compute: List[Tuple[float, float]] = []
            for peer in blocks:
                if peer != actor:
                    peer_compute.extend(compute_spans[peer])
            rows.append(OverlapRow(
                actor=actor,
                device=device,
                compute=total_time(compute_spans[actor]),
                comm=tracer.busy_time(kind="comm", actor=actor),
                wait=tracer.busy_time(kind="wait", actor=actor),
                hidden=overlap_time(own_hidden_spans, peer_compute),
            ))
    return rows


def overlap_fractions(tracer: Tracer) -> Dict[str, float]:
    """Per-rank overlap efficiency: hidden / (comm + wait) in [0, 1].

    Ranks with no communication or wait time report 1.0 (nothing to hide).
    """
    out: Dict[str, float] = {}
    for row in overlap_rows(tracer):
        exposed_base = row.comm + row.wait
        out[row.actor] = (row.hidden / exposed_base) if exposed_base > 0 \
            else 1.0
    return out


def overlap_report(tracer: Tracer) -> Table:
    """The Fig.-1 overlap table: per-rank activity + overlap efficiency."""
    table = Table(
        "Overlap efficiency per rank (hidden = comm+wait under peers' "
        "compute)",
        ["rank", "compute [us]", "comm [us]", "wait [us]", "hidden [us]",
         "overlap"])
    rows = overlap_rows(tracer)
    for row in rows:
        base = row.comm + row.wait
        fraction = row.hidden / base if base > 0 else 1.0
        table.add_row(row.actor, row.compute * 1e6, row.comm * 1e6,
                      row.wait * 1e6, row.hidden * 1e6, fraction)
    if rows:
        total_base = sum(r.comm + r.wait for r in rows)
        total_hidden = sum(r.hidden for r in rows)
        table.add_note(
            f"aggregate overlap fraction: "
            f"{(total_hidden / total_base) if total_base else 1.0:.4f} "
            f"over {len(rows)} ranks")
    else:
        table.add_note("no block intervals traced — enable ObsConfig or "
                       "MachineConfig.tracing")
    return table


def metrics_report(registry: MetricsRegistry) -> Table:
    """Flat rendering of every registered scalar, histogram, and series."""
    table = Table("Metrics registry", ["metric", "value"])
    for name, value in registry.snapshot().items():
        metric = registry[name]
        if isinstance(metric, (Counter, Gauge)):
            table.add_row(name, value)
        elif isinstance(metric, Histogram):
            table.add_row(
                name,
                f"n={metric.count} mean={metric.mean:.3e} "
                f"max={metric.max if metric.max is not None else 0:.3e}")
        else:  # OccupancySeries snapshot dict
            table.add_row(
                name,
                f"mean={value['mean']:.4g} max={value['max']:.4g} "
                f"samples={value['samples']}")
    return table
