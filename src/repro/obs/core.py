"""The per-cluster observability handle.

A :class:`Observability` instance rides on the :class:`~repro.hw.cluster.
Cluster` and is threaded through the hardware and runtime layers at
construction time.  Components ask it for instruments *once*, at wiring
time::

    self._depth = obs.series(f"queue.{name}.depth") if obs else None

and guard each recording site with ``if self._depth is not None``.  When the
layer is disabled the factory methods return ``None``, so a disabled run
carries no instruments, no registry entries, and no per-event work beyond
the attribute check — instrumentation is free when off.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from .config import ObsConfig
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    OccupancySeries,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Environment

__all__ = ["Observability"]


class Observability:
    """Metrics registry + config gates for one simulated cluster."""

    def __init__(self, env: "Environment", cfg: Optional[ObsConfig] = None):
        self.env = env
        self.cfg = cfg or ObsConfig()
        self.enabled = self.cfg.enabled
        self.registry = MetricsRegistry()

    def __bool__(self) -> bool:
        return self.enabled

    # -- gated instrument factories (None when the gate is closed) -------
    def counter(self, name: str) -> Optional[Counter]:
        return self.registry.counter(name) if self.enabled else None

    def gauge(self, name: str) -> Optional[Gauge]:
        return self.registry.gauge(name) if self.enabled else None

    def latency_histogram(self, name: str,
                          bounds: Optional[Sequence[float]] = None
                          ) -> Optional[Histogram]:
        if not (self.enabled and self.cfg.latency_histograms):
            return None
        return self.registry.histogram(
            name, bounds or self.cfg.histogram_buckets)

    def link_series(self, name: str) -> Optional[OccupancySeries]:
        if not (self.enabled and self.cfg.link_series):
            return None
        return self.registry.series(name)

    def link_counter(self, name: str) -> Optional[Counter]:
        if not (self.enabled and self.cfg.link_series):
            return None
        return self.registry.counter(name)

    def queue_series(self, name: str) -> Optional[OccupancySeries]:
        if not (self.enabled and self.cfg.queue_series):
            return None
        return self.registry.series(name)

    def queue_counter(self, name: str) -> Optional[Counter]:
        if not (self.enabled and self.cfg.queue_series):
            return None
        return self.registry.counter(name)
