"""Unified observability: metrics registry + Perfetto trace export.

The measurement substrate for every performance claim the reproduction
makes.  Three pieces:

* :mod:`repro.obs.metrics` — passive instruments (monotonic counters,
  gauges, fixed-bucket latency histograms, time-weighted occupancy series)
  behind a flat :class:`MetricsRegistry`;
* :mod:`repro.obs.export` — Chrome trace-event / Perfetto JSON export of
  the interval trace plus counter tracks;
* :mod:`repro.obs.report` — the per-rank overlap-efficiency report (the
  paper's Fig. 1 quantity) computed from traced intervals.

Everything hangs off a single switch, :class:`ObsConfig` (embedded in
:class:`~repro.hw.config.MachineConfig`), and the whole layer is strictly
*zero perturbation*: instruments record, they never schedule — enabling
observability cannot move a simulated timestamp.  CLI::

    python -m repro.obs report
    python -m repro.obs export --chrome trace.json

The report symbols are loaded lazily (PEP 562): :mod:`repro.obs.report`
pulls in the benchmark layer, which itself imports :mod:`repro.hw` — and
``repro.hw.config`` imports :mod:`repro.obs.config` for the ``ObsConfig``
field.  Lazy loading keeps that triangle acyclic.
"""

from .config import (
    DEFAULT_LATENCY_BUCKETS,
    ObsConfig,
    default_obs,
    force_enabled,
)
from .core import Observability
from .export import chrome_trace, chrome_trace_events, write_chrome
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    OccupancySeries,
)

__all__ = [
    "ObsConfig", "DEFAULT_LATENCY_BUCKETS", "default_obs", "force_enabled",
    "Observability",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "OccupancySeries",
    "chrome_trace", "chrome_trace_events", "write_chrome",
    "OverlapRow", "overlap_rows", "overlap_fractions", "overlap_report",
    "metrics_report",
]

_REPORT_SYMBOLS = ("OverlapRow", "overlap_rows", "overlap_fractions",
                   "overlap_report", "metrics_report")


def __getattr__(name):
    if name in _REPORT_SYMBOLS:
        from . import report
        return getattr(report, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
