"""Observability CLI: run a workload with the layer on, report or export.

Usage::

    python -m repro.obs report                       # diffusion, 2 nodes
    python -m repro.obs report --workload newton
    python -m repro.obs export --chrome trace.json   # open in Perfetto
    python -m repro.obs export --chrome trace.json --workload copy \
        --nodes 2 --ranks 8 --steps 4

``report`` prints the per-rank overlap-efficiency table (the paper's Fig. 1
quantity) plus the metrics-registry summary; ``export`` writes a Chrome
trace-event JSON that loads directly in https://ui.perfetto.dev or
``chrome://tracing``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

from ..hw import Cluster, greina
from ..sim import Tracer
from .config import ObsConfig
from .core import Observability
from .export import write_chrome
from .report import metrics_report, overlap_report

__all__ = ["main"]

WORKLOADS = ("diffusion", "newton", "copy")


def _run_workload(args: argparse.Namespace) -> Tuple[Tracer, Observability]:
    """Run the chosen workload on an observability-enabled cluster."""
    cfg = greina(args.nodes, tracing=True, obs=ObsConfig(enabled=True))
    cluster = Cluster(cfg)
    if args.workload == "diffusion":
        from ..apps.diffusion import DiffusionWorkload, run_dcuda_diffusion
        wl = DiffusionWorkload(ni=8, nj_per_device=2 * args.ranks, nk=2,
                               steps=args.steps)
        run_dcuda_diffusion(cluster, wl, args.ranks)
    else:
        from ..bench.overlap import run_overlap
        run_overlap(args.workload, compute_iters=4, steps=args.steps,
                    num_nodes=args.nodes, ranks_per_device=args.ranks,
                    cluster=cluster)
    return cluster.tracer, cluster.obs


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Run a workload with observability enabled; report "
                    "overlap efficiency or export a Perfetto trace.")
    sub = parser.add_subparsers(dest="command", required=True)

    def _common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workload", choices=WORKLOADS, default="diffusion",
                       help="workload to trace (default: diffusion)")
        p.add_argument("--nodes", type=int, default=2,
                       help="cluster node count (default: 2)")
        p.add_argument("--ranks", type=int, default=4,
                       help="ranks per device (default: 4)")
        p.add_argument("--steps", type=int, default=2,
                       help="workload loop iterations (default: 2)")

    rep = sub.add_parser("report",
                         help="print the per-rank overlap-efficiency table")
    _common(rep)
    rep.add_argument("--metrics", action="store_true",
                     help="also print the full metrics-registry table")

    exp = sub.add_parser("export", help="write a Chrome trace-event JSON")
    _common(exp)
    exp.add_argument("--chrome", metavar="PATH", required=True,
                     help="output path for the trace JSON")

    args = parser.parse_args(argv)
    tracer, obs = _run_workload(args)

    if args.command == "report":
        print(overlap_report(tracer).render())
        if args.metrics:
            print()
            print(metrics_report(obs.registry).render())
    else:
        count = write_chrome(args.chrome, tracer, obs.registry)
        print(f"wrote {count} trace events -> {args.chrome}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
