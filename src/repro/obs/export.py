"""Chrome trace-event / Perfetto export.

Converts the cluster's interval trace plus the metrics registry's occupancy
series into the Chrome trace-event JSON format (the ``traceEvents`` array
understood by ``chrome://tracing`` and https://ui.perfetto.dev):

* every :class:`~repro.sim.trace.Interval` becomes a complete ``"X"`` event
  (microsecond ``ts``/``dur``), one Perfetto *track* per actor, tracks
  grouped into one *process* per device/host component;
* every :class:`~repro.obs.metrics.OccupancySeries` becomes a sequence of
  counter ``"C"`` events, so queue depths, credits, and active link flows
  render as stacked counter tracks above the timeline;
* ``"M"`` metadata events name the processes and threads.

Timestamps are simulated seconds scaled to integer-friendly microseconds —
Perfetto sorts and displays fractional microseconds fine, so no rounding is
applied and the export stays lossless.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from ..sim.trace import Tracer
from .metrics import MetricsRegistry, OccupancySeries

__all__ = ["chrome_trace", "chrome_trace_events", "write_chrome"]

_US = 1e6  # seconds -> microseconds

#: pid reserved for the counter tracks (registry series).
_METRICS_PID = 9999


def _process_of(actor: str) -> str:
    """Track-grouping key: ``node0.gpu.b3`` renders under ``node0.gpu``."""
    return actor.rsplit(".", 1)[0] if "." in actor else actor


def chrome_trace_events(tracer: Optional[Tracer] = None,
                        registry: Optional[MetricsRegistry] = None
                        ) -> List[dict]:
    """The flat ``traceEvents`` list (metadata + spans + counters)."""
    events: List[dict] = []
    if tracer is not None and tracer.intervals:
        actors = tracer.actors()
        processes: Dict[str, int] = {}
        tids: Dict[str, int] = {}
        for actor in actors:
            proc = _process_of(actor)
            if proc not in processes:
                pid = processes[proc] = len(processes)
                events.append({"name": "process_name", "ph": "M",
                               "pid": pid, "tid": 0,
                               "args": {"name": proc}})
            tids[actor] = len(tids)
            events.append({"name": "thread_name", "ph": "M",
                           "pid": processes[proc], "tid": tids[actor],
                           "args": {"name": actor}})
        for iv in tracer.intervals:
            events.append({
                "name": iv.detail or iv.kind,
                "cat": iv.kind,
                "ph": "X",
                "ts": iv.start * _US,
                "dur": iv.duration * _US,
                "pid": processes[_process_of(iv.actor)],
                "tid": tids[iv.actor],
                "args": {"actor": iv.actor, "kind": iv.kind},
            })
    if registry is not None:
        series = registry.by_kind(OccupancySeries)
        if series:
            events.append({"name": "process_name", "ph": "M",
                           "pid": _METRICS_PID, "tid": 0,
                           "args": {"name": "metrics"}})
            for s in series:
                for t, v in zip(s.times, s.values):
                    events.append({"name": s.name, "ph": "C",
                                   "ts": t * _US, "pid": _METRICS_PID,
                                   "args": {"value": v}})
    return events


def chrome_trace(tracer: Optional[Tracer] = None,
                 registry: Optional[MetricsRegistry] = None) -> dict:
    """The full JSON-object form Perfetto accepts directly."""
    return {"traceEvents": chrome_trace_events(tracer, registry),
            "displayTimeUnit": "ms"}


def write_chrome(path: str, tracer: Optional[Tracer] = None,
                 registry: Optional[MetricsRegistry] = None) -> int:
    """Write the trace JSON to *path*; returns the number of events."""
    trace = chrome_trace(tracer, registry)
    with open(path, "w") as fh:
        json.dump(trace, fh)
        fh.write("\n")
    return len(trace["traceEvents"])
