"""Observability configuration: one switch, zero cost when off.

:class:`ObsConfig` is the single knob that turns the unified observability
layer on.  It lives in its own dependency-free module so that
:mod:`repro.hw.config` can embed it in :class:`~repro.hw.config.MachineConfig`
without creating an import cycle (obs → sim/hw, never the reverse).

The contract every instrumented component honours:

* **disabled** (the default): components hold ``None`` instead of an
  instrument, so the per-event cost is a single ``is not None`` check on a
  cold attribute — no allocation, no registry, no samples;
* **enabled**: instruments only *record* (append a sample, bump a counter,
  bin a latency).  They never create simulation events, acquire resources,
  or otherwise touch the event queue, so enabling observability cannot move
  a single simulated timestamp (the zero-perturbation regression test
  enforces this against the golden fixture).

:func:`force_enabled` flips the *default* for configs created inside the
``with`` block — the hook the zero-perturbation test and the ``repro.obs``
CLI use to switch on observability inside workloads that build their own
:func:`~repro.hw.config.greina` configs.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Tuple

__all__ = ["ObsConfig", "DEFAULT_LATENCY_BUCKETS", "default_obs",
           "force_enabled"]

#: Default latency-histogram bucket upper bounds [s]: half-decade steps from
#: 100 ns to 10 ms, matching the latency scales of the Greina cost model
#: (PCIe transactions ~1 µs, notified puts ~10 µs, figure loops ~100 µs+).
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-7, 3e-7, 1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2,
)


@dataclass(frozen=True)
class ObsConfig:
    """The observability layer's single switch plus per-subsystem gates."""

    #: Master switch; everything below only matters when this is True.
    enabled: bool = False
    #: Record per-block activity intervals (forces the cluster Tracer on).
    trace_intervals: bool = True
    #: Count event-loop entries/dispatches in the simulation kernel.
    event_loop_stats: bool = True
    #: Per-link bytes counters and active-flow occupancy series.
    link_series: bool = True
    #: Queue depth and credit occupancy series plus enqueue counters.
    queue_series: bool = True
    #: Command and notification-match latency histograms.
    latency_histograms: bool = True
    #: Upper bucket edges for all latency histograms [s].
    histogram_buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS


_FORCED_DEFAULT = False


def default_obs() -> ObsConfig:
    """The ObsConfig a fresh :class:`MachineConfig` gets (normally off)."""
    return ObsConfig(enabled=True) if _FORCED_DEFAULT else ObsConfig()


@contextmanager
def force_enabled() -> Iterator[None]:
    """Make every config built inside the block observability-enabled.

    Only affects *defaults*: a config that sets ``obs=`` explicitly keeps
    its value.  Used by the zero-perturbation test and the CLI to enable
    the layer inside workload helpers that construct their own configs.
    """
    global _FORCED_DEFAULT
    previous = _FORCED_DEFAULT
    _FORCED_DEFAULT = True
    try:
        yield
    finally:
        _FORCED_DEFAULT = previous
