"""Metric instruments and the registry that names them.

Four instrument kinds cover everything the simulator needs to expose:

* :class:`Counter` — monotonic event counts (enqueues, messages, matches);
* :class:`Gauge` — instantaneous values that move both ways;
* :class:`Histogram` — fixed-bucket latency distributions (command handling,
  notification waits); fixed buckets keep ``observe`` O(log buckets) with no
  allocation, so recording cannot perturb the simulation;
* :class:`OccupancySeries` — a step function of (time, value) samples for
  time-weighted occupancy (queue depth, credits, active link flows); the
  integral and time-weighted mean are exact for step functions.

All instruments are *passive*: they never touch the simulation event queue.
The :class:`MetricsRegistry` is a flat name→instrument map; asking for the
same name twice returns the same instrument, so wiring code can be naive
about creation order.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "OccupancySeries",
           "MetricsRegistry"]


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc by {amount!r})")
        self.value += amount


class Gauge:
    """An instantaneous value that may move both ways."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket distribution; bucket *i* counts ``x <= bounds[i]``.

    One extra overflow bucket counts observations above the last bound, so
    ``sum(counts) == count`` always holds (a property test asserts it).
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float]):
        ordered = tuple(float(b) for b in bounds)
        if not ordered:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        if any(b >= a for b, a in zip(ordered, ordered[1:])):
            raise ValueError(
                f"histogram {name!r} bounds must strictly increase: "
                f"{ordered}")
        self.name = name
        self.bounds = ordered
        self.counts = [0] * (len(ordered) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class OccupancySeries:
    """A right-continuous step function sampled at state changes.

    ``sample(t, v)`` records that the series holds value *v* from time *t*
    until the next sample.  Samples must arrive in non-decreasing time
    order (simulated time only moves forward); several samples at the same
    instant collapse to the last one, which matches how a queue that
    enqueues and dequeues in the same event-loop step looks from outside.
    """

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str):
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def sample(self, t: float, value: float) -> None:
        times = self.times
        if times:
            last = times[-1]
            if t < last:
                raise ValueError(
                    f"series {self.name!r} sampled backwards in time: "
                    f"{t} after {last}")
            if t == last:
                self.values[-1] = value
                return
        times.append(t)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def value_at(self, t: float) -> float:
        """Series value at time *t* (0 before the first sample)."""
        idx = bisect_left(self.times, t)
        if idx < len(self.times) and self.times[idx] == t:
            return self.values[idx]
        return self.values[idx - 1] if idx > 0 else 0.0

    def integral(self, t0: Optional[float] = None,
                 t1: Optional[float] = None) -> float:
        """Exact time-weighted integral of the step function over [t0, t1].

        Defaults to the sampled span.  The last sample's value extends to
        *t1* (the state persists until something changes it).
        """
        if not self.times:
            return 0.0
        if t0 is None:
            t0 = self.times[0]
        if t1 is None:
            t1 = self.times[-1]
        if t1 <= t0:
            return 0.0
        total = 0.0
        for i, (t, v) in enumerate(zip(self.times, self.values)):
            seg_start = max(t, t0)
            seg_end = self.times[i + 1] if i + 1 < len(self.times) else t1
            seg_end = min(seg_end, t1)
            if seg_end > seg_start:
                total += v * (seg_end - seg_start)
        # Portion of [t0, t1] before the first sample contributes 0.
        return total

    def time_weighted_mean(self, t0: Optional[float] = None,
                           t1: Optional[float] = None) -> float:
        if not self.times:
            return 0.0
        lo = self.times[0] if t0 is None else t0
        hi = self.times[-1] if t1 is None else t1
        if hi <= lo:
            return 0.0
        return self.integral(lo, hi) / (hi - lo)

    def max_value(self) -> float:
        return max(self.values) if self.values else 0.0


class MetricsRegistry:
    """Flat name → instrument map; get-or-create semantics per kind."""

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, kind: type, factory):
        instrument = self._metrics.get(name)
        if instrument is None:
            instrument = self._metrics[name] = factory()
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}")
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str, bounds: Sequence[float]) -> Histogram:
        return self._get(name, Histogram, lambda: Histogram(name, bounds))

    def series(self, name: str) -> OccupancySeries:
        return self._get(name, OccupancySeries,
                         lambda: OccupancySeries(name))

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __getitem__(self, name: str):
        return self._metrics[name]

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def by_kind(self, kind: type) -> List:
        return [self._metrics[n] for n in self.names()
                if isinstance(self._metrics[n], kind)]

    def snapshot(self) -> Dict[str, object]:
        """JSON-able flat view of every instrument's current state."""
        out: Dict[str, object] = {}
        for name in self.names():
            m = self._metrics[name]
            if isinstance(m, Counter):
                out[name] = m.value
            elif isinstance(m, Gauge):
                out[name] = m.value
            elif isinstance(m, Histogram):
                out[name] = {"count": m.count, "total": m.total,
                             "mean": m.mean, "min": m.min, "max": m.max,
                             "bounds": list(m.bounds),
                             "counts": list(m.counts)}
            elif isinstance(m, OccupancySeries):
                out[name] = {"samples": len(m),
                             "mean": m.time_weighted_mean(),
                             "max": m.max_value(),
                             "integral": m.integral()}
        return out
