#!/usr/bin/env python3
"""Fig. 1 — block scheduling of MPI-CUDA vs dCUDA, visualized.

Reproduces the paper's conceptual figure from actual execution traces:
two dual-SM devices, each over-subscribed with two blocks per SM, running
sequential compute/exchange phases.  The MPI-CUDA timeline shows the
device idling during communication; the dCUDA timeline shows competing
blocks filling the gaps ('c' = compute, 'w' = wait, 'm' = notification
matching, 'o' = communication).

Run:  python examples/schedule_trace.py
"""

import dataclasses
import os

import numpy as np

from repro.dcuda import launch
from repro.hw import Cluster, GPUConfig, greina
from repro.mpicuda import run_mpicuda

# REPRO_TINY=1 shrinks every example to smoke-test scale (see
# tests/integration/test_examples.py).
TINY = os.environ.get("REPRO_TINY") == "1"

STEPS = 2 if TINY else 4
FLOPS = 4e6  # per block per phase
HALO = 512 if TINY else 4096


def tiny_cluster():
    """Two nodes, two SMs per device, two blocks per SM (Fig. 1 setup)."""
    cfg = greina(2, tracing=True)
    gpu = GPUConfig(num_sms=2, max_blocks_per_sm=2,
                    flops=cfg.gpu.flops / 6.5)  # keep per-SM rate realistic
    return Cluster(dataclasses.replace(cfg, gpu=gpu))


def dcuda_program(rank, buffers):
    r = rank.comm_rank()
    size = rank.comm_size()
    win = yield from rank.win_create(buffers[r])
    yield from rank.barrier()
    lsend, rsend = r - 1 >= 0, r + 1 < size
    data = buffers[r][:HALO]
    for _ in range(STEPS):
        yield from rank.compute(flops=FLOPS, detail="phase")
        if lsend:
            yield from rank.put_notify(win, r - 1, HALO, data, tag=1)
        if rsend:
            yield from rank.put_notify(win, r + 1, HALO, data, tag=1)
        yield from rank.wait_notifications(win, tag=1,
                                           count=lsend + rsend)
    yield from rank.finish()


def mpicuda_program(ctx):
    peer = 1 - ctx.rank
    payload = np.zeros(HALO, dtype=np.uint8)
    for _ in range(STEPS):
        yield from ctx.launch(4, flops_per_block=FLOPS, detail="kernel")
        ctx.isend(peer, payload, tag=1)
        yield from ctx.recv(source=peer, tag=1)


def main():
    kinds = {"compute": "c", "wait": "w", "match": "m", "comm": "o"}

    cluster = tiny_cluster()
    buffers = {r: np.zeros(2 * HALO, dtype=np.uint8) for r in range(4)}
    launch(cluster, dcuda_program, ranks_per_device=2,
           kernel_args={"buffers": buffers})
    print("dCUDA: over-subscribed blocks overlap their exchange phases")
    print(cluster.tracer.render_ascii(width=100, kinds=kinds))

    cluster = tiny_cluster()
    run_mpicuda(cluster, mpicuda_program)
    print("\nMPI-CUDA: the device idles while the host communicates")
    print(cluster.tracer.render_ascii(width=100, kinds=kinds))
    print("\nlegend: c=compute  w=wait  m=notification matching  "
          "o=communication  .=idle")


if __name__ == "__main__":
    main()
