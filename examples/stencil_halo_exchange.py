#!/usr/bin/env python3
"""The paper's running example (Fig. 2): a 2-D stencil with halo exchange.

Runs the same workload three ways — serial reference, dCUDA, MPI-CUDA —
verifies that all three produce bit-identical fields, and compares the
simulated execution times on a 4-node cluster.  The dCUDA variant's
overlapping windows make same-device halo exchanges zero-copy; only device
boundaries touch the network.

Run:  python examples/stencil_halo_exchange.py
"""

import os

import numpy as np

from repro.apps.stencil2d import (
    Stencil2DWorkload,
    reference,
    run_dcuda_stencil2d,
    run_mpicuda_stencil2d,
)
from repro.bench import Table
from repro.hw import Cluster, greina

# REPRO_TINY=1 shrinks every example to smoke-test scale (see
# tests/integration/test_examples.py).
TINY = os.environ.get("REPRO_TINY") == "1"

NODES = 4
RANKS_PER_DEVICE = 2 if TINY else 26
NBLOCKS = 16 if TINY else 208


def main():
    if TINY:
        wl = Stencil2DWorkload(ni=16, nj_per_device=8, steps=3)
    else:
        wl = Stencil2DWorkload(ni=128, nj_per_device=104, steps=20)
    print(f"domain: {wl.ni} x {wl.nj_per_device * NODES} grid points over "
          f"{NODES} devices, {wl.steps} stencil sweeps\n")

    ref = reference(wl, NODES)

    t_dcuda, out_dcuda, res = run_dcuda_stencil2d(
        Cluster(greina(NODES)), wl, RANKS_PER_DEVICE)
    np.testing.assert_allclose(out_dcuda, ref, rtol=1e-12)

    t_mpicuda, out_mpicuda, stats = run_mpicuda_stencil2d(
        Cluster(greina(NODES)), wl, nblocks=NBLOCKS)
    np.testing.assert_allclose(out_mpicuda, ref, rtol=1e-12)

    halo = max(s["halo_time"] for s in stats.values())
    table = Table("2-D stencil, 4 nodes",
                  ["variant", "time [ms]", "notes"])
    table.add_row("dCUDA", t_dcuda * 1e3,
                  f"{RANKS_PER_DEVICE} ranks/device, halo hidden")
    table.add_row("MPI-CUDA", t_mpicuda * 1e3,
                  f"halo exchange costs {halo * 1e3:.3f} ms")
    table.add_note("both variants verified against the serial reference")
    print(table.render())

    msgs = sum(res.runtime.cluster.fabric.nic_stats(n)["messages"]
               for n in range(NODES))
    print(f"\ndCUDA network messages: {msgs} "
          f"(only device-boundary halos; interior halos are zero-copy)")


if __name__ == "__main__":
    main()
