#!/usr/bin/env python3
"""Data-parallel SGD with an autotuned gradient allreduce.

Runs the same training step — local gradients, allreduce, update — on a
flat machine and on a 2:1-oversubscribed fat tree with NVLink-class
intra-node links, letting the collective autotuner pick the algorithm
family per (topology, group, message size).  Small gradients go tree
(fewest latency terms); large gradients go ring on the flat fabric
(bandwidth-optimal) and hierarchical on the fat tree (keep bytes off the
congested spine).  The table prints the autotuner's predicted cost per
family next to what actually ran.

Run:  python examples/train_step.py
"""

import os

import numpy as np

from repro.apps.train_step import (TrainWorkload, autotune_step,
                                   run_train_step, train_reference)
from repro.bench import Table
from repro.hw import Cluster, greina
from repro.platform import fat_tree, flat
from repro.platform.topology import LinkSpec

# REPRO_TINY=1 shrinks every example to smoke-test scale (see
# tests/integration/test_examples.py).
TINY = os.environ.get("REPRO_TINY") == "1"

NODES = 2 if TINY else 4
GPUS = 2
STEPS = 2 if TINY else 5
FEATURES = (8, 64) if TINY else (8, 4096)

NVLINK = LinkSpec(bandwidth=50e9, latency=0.25e-6)
MACHINES = (
    ("flat", flat(num_nodes=NODES * GPUS, gpus_per_node=1)),
    ("fat_tree", fat_tree(num_nodes=NODES, gpus_per_node=GPUS,
                          intra_link=NVLINK)),
)


def main() -> None:
    ranks = NODES * GPUS
    table = Table("autotuned data-parallel SGD",
                  ["topology", "features", "chosen", "predicted [us]",
                   "measured loop [us]"])
    for name, topo in MACHINES:
        for features in FEATURES:
            wl = TrainWorkload(features=features, steps=STEPS)
            cluster = Cluster(greina(topology=topo))
            choice = autotune_step(cluster, wl)
            elapsed, weights, info = run_train_step(cluster, wl,
                                                    algorithm="auto")
            if not np.allclose(weights, train_reference(wl, ranks)):
                raise SystemExit(f"{name}/{features}: weights diverged "
                                 f"from the serial reference")
            predicted = choice.costs[choice.algorithm]
            table.add_row(name, features, info["algorithm"],
                          f"{predicted * 1e6:9.1f}",
                          f"{elapsed * 1e6:9.1f}")
    table.add_note(f"{ranks} replicas; gradients verified against the "
                   "serial reference each run")
    print(table.render())
    print("\nDecision drivers: tree minimizes per-message latency terms "
          "(small gradients); ring minimizes inter-node bytes (large, "
          "flat); hierarchical keeps large gradients off the "
          "oversubscribed spine (fat tree).")


if __name__ == "__main__":
    main()
