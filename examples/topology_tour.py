#!/usr/bin/env python3
"""Tour of the platform layer: declarative topologies and placement.

Builds the same logical machine — four nodes with two GPUs each — on
three interconnects (flat crossbar, 2:1 oversubscribed fat tree, ring)
and measures the 1 KiB put latency between three rank placements:

* ``same-node``  — both ranks on node 0, different GPUs (intra-node link)
* ``adjacent``   — nodes 0 and 1 (one or two wire hops)
* ``far``        — nodes 0 and 2 (the ring diameter; via the spine on
  the fat tree)

The flat interconnect is distance-invariant; the fat tree charges the
leaf-spine-leaf detour between leaves; the ring pays per hop.  All three
keep the intra-node hop cheapest — exactly the ordering a placement
policy wants to exploit.

Run:  python examples/topology_tour.py
"""

import os

from repro.bench import Table
from repro.bench.pingpong import run_pingpong_pair
from repro.hw import Cluster, greina
from repro.platform import fat_tree, flat, ring

# REPRO_TINY=1 shrinks every example to smoke-test scale (see
# tests/integration/test_examples.py).
TINY = os.environ.get("REPRO_TINY") == "1"

NODES = 4
GPUS = 2
ITERATIONS = 5 if TINY else 50
PAIRS = [("same-node", (0, 0), (0, 1)),
         ("adjacent", (0, 0), (1, 0)),
         ("far", (0, 0), (NODES // 2, 0))]


def build(kind):
    if kind == "fat_tree":
        return fat_tree(num_nodes=NODES, gpus_per_node=GPUS,
                        oversubscription=2.0)
    if kind == "ring":
        return ring(NODES, gpus_per_node=GPUS)
    return flat(num_nodes=NODES, gpus_per_node=GPUS)


def main():
    table = Table(f"topology tour - 1 KiB put latency "
                  f"({NODES} nodes x {GPUS} GPUs)",
                  ["interconnect", "pair", "route", "latency [us]"])
    for kind in ("flat", "fat_tree", "ring"):
        cfg = greina(topology=build(kind))
        for pair, a, b in PAIRS:
            r = run_pingpong_pair(cfg, a=a, b=b, packet_bytes=1024,
                                  iterations=ITERATIONS)
            hops = Cluster(cfg).fabric.hops(a[0], b[0])
            route = "intra-node" if a[0] == b[0] else f"{hops} hop(s)"
            table.add_row(kind, pair, route, r.latency * 1e6)
    print(table.render())
    print("\nsame-node stays on the intra-node link on every "
          "interconnect; only the wire hops change with topology")


if __name__ == "__main__":
    main()
