#!/usr/bin/env python3
"""The paper's Fig. 2 listing, transliterated line by line.

The original CUDA kernel (paper, Fig. 2) reads::

    shared dcuda_context ctx;
    dcuda_init(param, ctx);
    dcuda_comm_size(ctx, DCUDA_COMM_WORLD, &size);
    dcuda_comm_rank(ctx, DCUDA_COMM_WORLD, &rank);

    dcuda_win win, wout;
    dcuda_win_create(ctx, DCUDA_COMM_WORLD, &in[0],  len + 2*jstride, &win);
    dcuda_win_create(ctx, DCUDA_COMM_WORLD, &out[0], len + 2*jstride, &wout);

    bool lsend = rank - 1 >= 0;
    bool rsend = rank + 1 < size;

    int from = threadIdx.x + jstride;
    int to   = from + len;

    for (int i = 0; i < steps; ++i) {
        for (int idx = from; idx < to; idx += jstride)
            out[idx] = -4.0 * in[idx]
                + in[idx + 1] + in[idx - 1]
                + in[idx + jstride] + in[idx - jstride];

        if (lsend)
            dcuda_put_notify(ctx, wout, rank - 1,
                len + jstride, jstride, &out[jstride], tag);
        if (rsend)
            dcuda_put_notify(ctx, wout, rank + 1,
                0, jstride, &out[len], tag);

        dcuda_wait_notifications(ctx, wout,
            DCUDA_ANY_SOURCE, tag, lsend + rsend);

        swap(in, out); swap(win, wout);
    }

    dcuda_win_free(ctx, win);
    dcuda_win_free(ctx, wout);
    dcuda_finish(ctx);

Below is the same program against this library's C-style API
(`repro.dcuda.capi`): each rank owns `len` interior points plus one
jstride halo line on each side, exactly like the listing.

Run:  python examples/fig2_listing.py
"""

import os

import numpy as np

from repro.dcuda import launch
from repro.dcuda.capi import (
    DCUDA_ANY_SOURCE,
    DCUDA_COMM_WORLD,
    dcuda_comm_rank,
    dcuda_comm_size,
    dcuda_finish,
    dcuda_put_notify,
    dcuda_wait_notifications,
    dcuda_win_create,
    dcuda_win_free,
)
from repro.hw import Cluster, greina

# REPRO_TINY=1 shrinks every example to smoke-test scale (see
# tests/integration/test_examples.py).
TINY = os.environ.get("REPRO_TINY") == "1"

JSTRIDE = 8 if TINY else 32   # points per j-line
LEN = 4 * JSTRIDE             # interior points per rank
STEPS = 2 if TINY else 5
TAG = 0


def stencil_kernel(ctx, arrays):
    size = dcuda_comm_size(ctx, DCUDA_COMM_WORLD)
    rank = dcuda_comm_rank(ctx, DCUDA_COMM_WORLD)
    in_arr, out_arr = arrays[rank]

    win = yield from dcuda_win_create(ctx, DCUDA_COMM_WORLD, in_arr)
    wout = yield from dcuda_win_create(ctx, DCUDA_COMM_WORLD, out_arr)

    lsend = rank - 1 >= 0
    rsend = rank + 1 < size
    frm, to = JSTRIDE, JSTRIDE + LEN

    for _ in range(STEPS):
        def sweep(src=in_arr, dst=out_arr):
            idx = np.arange(frm, to)
            interior = idx[(idx % JSTRIDE != 0)
                           & (idx % JSTRIDE != JSTRIDE - 1)]
            dst[interior] = (-4.0 * src[interior]
                             + src[interior + 1] + src[interior - 1]
                             + src[interior + JSTRIDE]
                             + src[interior - JSTRIDE])
        yield from ctx.compute(flops=6.0 * LEN, mem_bytes=24.0 * LEN,
                               fn=sweep, detail="stencil")

        if lsend:
            yield from dcuda_put_notify(ctx, wout, rank - 1,
                                        LEN + JSTRIDE,
                                        out_arr[JSTRIDE:2 * JSTRIDE], TAG)
        if rsend:
            yield from dcuda_put_notify(ctx, wout, rank + 1,
                                        0, out_arr[LEN:LEN + JSTRIDE], TAG)

        yield from dcuda_wait_notifications(ctx, wout, DCUDA_ANY_SOURCE,
                                            TAG, lsend + rsend)

        in_arr, out_arr = out_arr, in_arr
        win, wout = wout, win

    yield from dcuda_win_free(ctx, win)
    yield from dcuda_win_free(ctx, wout)
    yield from dcuda_finish(ctx)


def main():
    nodes, rpd = 2, 2
    size = nodes * rpd
    rng = np.random.default_rng(3)
    arrays = {}
    for r in range(size):
        in_arr = rng.standard_normal(LEN + 2 * JSTRIDE)
        arrays[r] = [in_arr, np.zeros_like(in_arr)]

    result = launch(Cluster(greina(nodes)), stencil_kernel, rpd,
                    kernel_args={"arrays": arrays})
    print(__doc__.split("Below")[0].rstrip())
    print(f"\n... executed on {size} ranks over {nodes} simulated devices")
    print(f"simulated time: {result.elapsed * 1e6:.1f} us for {STEPS} "
          "iterations (halo exchange included)")


if __name__ == "__main__":
    main()
