#!/usr/bin/env python3
"""Pipelined GEMM forward pass: stream tile k+1 while computing tile k.

A producer rank streams the activation matrix ``X`` into every worker's
double buffer (credit-based, so a slot is never overwritten mid-read);
each worker multiplies its row block of ``W`` against tile ``t`` while
tile ``t+1`` is in flight, then the workers all-gather the full
``Y = W @ X``.  This is the csl-experiments streaming-GEMV shape — the
paper's Fig.-1 overlap claim applied to an ML forward pass.

The script measures the three-run overlap decomposition (Figs. 7/8
methodology): full pipeline, compute only, stream only — and reports the
overlap efficiency (fraction of streaming hidden behind compute) per
collective algorithm used for the final gather.

Run:  python examples/gemm_pipeline.py
"""

import os

import numpy as np

from repro.apps.gemm_stream import (GemmWorkload, gemm_reference,
                                    overlap_efficiency, run_gemm_pipeline)
from repro.bench import Table
from repro.dcuda.collectives import ALGORITHMS
from repro.hw import Cluster, greina
from repro.platform import fat_tree
from repro.platform.topology import LinkSpec

# REPRO_TINY=1 shrinks every example to smoke-test scale (see
# tests/integration/test_examples.py).
TINY = os.environ.get("REPRO_TINY") == "1"

NODES = 2 if TINY else 4
GPUS = 2
WL = (GemmWorkload(m=24, k=12, batch=8, tiles=4) if TINY
      else GemmWorkload(m=7000, k=96, batch=32, tiles=8, slots=4))


def build() -> Cluster:
    topo = fat_tree(num_nodes=NODES, gpus_per_node=GPUS,
                    intra_link=LinkSpec(bandwidth=50e9, latency=0.25e-6))
    return Cluster(greina(topology=topo))


def main() -> None:
    workers = NODES * GPUS - 1
    print(f"pipelined GEMM: W({WL.m}x{WL.k}) @ X({WL.k}x{WL.batch}), "
          f"{WL.tiles} tiles, {workers} workers + 1 producer\n")
    compute, _, _ = run_gemm_pipeline(build(), WL, mode="compute")
    stream, _, _ = run_gemm_pipeline(build(), WL, mode="stream")
    table = Table("overlap decomposition (median worker pipeline loop)",
                  ["gather", "both [us]", "compute [us]", "stream [us]",
                   "efficiency", "gather [us]"])
    for algorithm in ALGORITHMS:
        both, y, stats = run_gemm_pipeline(build(), WL, mode="both",
                                           algorithm=algorithm)
        assert y is not None
        if not np.array_equal(y, gemm_reference(WL, workers)):
            raise SystemExit(f"{algorithm}: Y does not match W @ X")
        eff = overlap_efficiency(both, compute, stream)
        gather = max(s["gather"] for s in stats.values())
        table.add_row(algorithm, f"{both * 1e6:9.1f}",
                      f"{compute * 1e6:9.1f}", f"{stream * 1e6:9.1f}",
                      f"{eff:9.2f}", f"{gather * 1e6:9.1f}")
    table.add_note("efficiency = (compute + stream - both) / stream; "
                   "1.0 = streaming fully hidden")
    print(table.render())
    print("\nY == W @ X bit-for-bit on every gather algorithm.")


if __name__ == "__main__":
    main()
