#!/usr/bin/env python3
"""Particle simulation demo: short-range forces, cell lists, migration.

Runs the Fig. 9 mini-application on a 2-node cluster and reports particle
migration statistics plus the dCUDA/MPI-CUDA timing comparison.  The
particle distribution evolves — the data-dependent load is what keeps the
paper's Fig. 9 from scaling perfectly flat.

Run:  python examples/particle_cloud.py
"""

import os

import numpy as np

from repro.apps.particles import (
    ParticleWorkload,
    reference,
    run_dcuda_particles,
    run_mpicuda_particles,
    seed_particles,
)
from repro.bench import Table
from repro.hw import Cluster, greina

# REPRO_TINY=1 shrinks every example to smoke-test scale (see
# tests/integration/test_examples.py).
TINY = os.environ.get("REPRO_TINY") == "1"

NODES = 2
RANKS_PER_DEVICE = 2 if TINY else 13
NBLOCKS = 16 if TINY else 104


def main():
    if TINY:
        wl = ParticleWorkload(cells_per_node=8, particles_per_node=80,
                              steps=3)
    else:
        wl = ParticleWorkload(cells_per_node=52, particles_per_node=2600,
                              steps=12)
    total = wl.particles_per_node * NODES
    print(f"{total} particles in {wl.cells_per_node * NODES} cells over "
          f"{NODES} devices, {wl.steps} integration steps\n")

    t_dcuda, state_d, _ = run_dcuda_particles(Cluster(greina(NODES)), wl,
                                              RANKS_PER_DEVICE)
    t_mpicuda, state_m, stats = run_mpicuda_particles(
        Cluster(greina(NODES)), wl, nblocks=NBLOCKS)
    ref = reference(wl, NODES)
    np.testing.assert_allclose(state_d, ref, rtol=1e-9, atol=1e-9)
    np.testing.assert_allclose(state_m, ref, rtol=1e-9, atol=1e-9)

    # Migration statistics: how many particles changed cells?
    init = seed_particles(wl, NODES)
    total_cells = wl.cells_per_node * NODES
    start_cell = {}
    for c in range(1, total_cells + 1):
        n = init.count(c)
        for pid in init.fields["pid"][c, :n]:
            start_cell[pid] = c - 1
    end_cells = np.minimum((state_d[:, 1] / wl.cutoff).astype(int),
                           total_cells - 1)
    moved = int(sum(start_cell[pid] != cell
                    for pid, cell in zip(state_d[:, 0], end_cells)))

    halo = max(s["halo_time"] for s in stats.values())
    table = Table("particle simulation, 2 nodes", ["variant", "time [ms]"])
    table.add_row("dCUDA", t_dcuda * 1e3)
    table.add_row("MPI-CUDA", t_mpicuda * 1e3)
    table.add_note(f"MPI-CUDA halo exchange: {halo * 1e3:.3f} ms "
                   "(includes the counter fetches dCUDA avoids)")
    print(table.render())
    print(f"\n{moved} of {total} particles migrated to another cell; "
          "all three variants agree bit-for-bit")
    speed = np.hypot(state_d[:, 3], state_d[:, 4])
    print(f"final speed: mean {speed.mean():.3f}, max {speed.max():.3f}")


if __name__ == "__main__":
    main()
