#!/usr/bin/env python3
"""Quickstart: device-side notified remote memory access in 60 lines.

Builds a two-node simulated GPU cluster, runs four dCUDA ranks (two per
device), and passes a token around a ring using ``put_notify`` /
``wait_notifications`` — the paper's core primitives.  Same-device hops
stay on the device; cross-device hops use the (simulated) InfiniBand
fabric, all through one uniform API.

Run:  python examples/quickstart.py
"""

import os

import numpy as np

from repro.dcuda import launch
from repro.hw import Cluster, greina

# REPRO_TINY=1 shrinks every example to smoke-test scale (see
# tests/integration/test_examples.py).
TINY = os.environ.get("REPRO_TINY") == "1"

NODES = 2
RANKS_PER_DEVICE = 2
LAPS = 2 if TINY else 3


def ring_kernel(rank, buffers, log):
    """Each rank owns a one-slot window; a counter token circulates."""
    r = rank.comm_rank()
    size = rank.comm_size()
    win = yield from rank.win_create(buffers[r])
    yield from rank.barrier()

    right = (r + 1) % size
    left = (r - 1) % size
    for lap in range(LAPS):
        if r == 0 and lap == 0:
            buffers[0][0] = 1.0  # inject the token
        else:
            # Wait for the token from the left neighbour, then bump it.
            yield from rank.wait_notifications(win, source=left, tag=0,
                                               count=1)
            buffers[r][0] += 1.0
        log.append((rank.now, r, lap, buffers[r][0]))
        if not (lap == LAPS - 1 and right == 0):
            yield from rank.put_notify(win, right, 0, buffers[r][:1],
                                       tag=0)

    yield from rank.win_free(win)
    yield from rank.finish()
    return buffers[r][0]


def main():
    cluster = Cluster(greina(NODES))
    size = NODES * RANKS_PER_DEVICE
    buffers = {r: np.zeros(1) for r in range(size)}
    log = []
    result = launch(cluster, ring_kernel, RANKS_PER_DEVICE,
                    kernel_args={"buffers": buffers, "log": log})

    print(f"{size} ranks on {NODES} simulated devices, {LAPS} ring laps")
    print(f"simulated time: {result.elapsed * 1e6:.1f} us\n")
    print(f"{'time [us]':>10}  {'rank':>4}  {'lap':>3}  token")
    for t, r, lap, token in log:
        place = "shared-mem hop" if r % RANKS_PER_DEVICE else "network hop"
        print(f"{t * 1e6:10.2f}  {r:4d}  {lap:3d}  {token:.0f}   ({place})")

    final = max(b[0] for b in buffers.values())
    expected = LAPS * size  # one increment per ring visit after injection
    assert final == expected, (final, expected)
    print(f"\ntoken reached {final:.0f} increments — OK")


if __name__ == "__main__":
    main()
