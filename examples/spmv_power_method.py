#!/usr/bin/env python3
"""Power method on a distributed sparse matrix.

The paper's SpMV mini-app ends every iteration with a barrier that
"emulates possible follow-up steps ... for example, the normalization of
the output vector performed by the power method."  This example runs the
actual power method: every multiply is the full distributed dCUDA kernel
(2-D decomposition, broadcast down columns, reduction along rows, global
barrier), with the normalization between multiplies, estimating the
dominant eigenvalue of a random sparse matrix.

Run:  python examples/spmv_power_method.py
"""

import os

import numpy as np
import scipy.sparse as sp

from repro.apps.decomp import square_grid
from repro.apps.spmv import SpmvWorkload, make_block, run_dcuda_spmv
from repro.hw import Cluster, greina

# REPRO_TINY=1 shrinks every example to smoke-test scale (see
# tests/integration/test_examples.py).
TINY = os.environ.get("REPRO_TINY") == "1"

NODES = 4
RANKS_PER_DEVICE = 4 if TINY else 16
POWER_ITERS = 2 if TINY else 8


def assemble_global(wl, num_nodes):
    pr, pc = square_grid(num_nodes)
    return sp.bmat([[make_block(wl, r, c) for c in range(pc)]
                    for r in range(pr)], format="csr")


def main():
    wl = SpmvWorkload(n_per_device=64 if TINY else 512, density=0.02,
                      iters=1)
    a_global = assemble_global(wl, NODES)
    n = a_global.shape[0]
    print(f"matrix: {n} x {n}, {a_global.nnz} non-zeros over {NODES} "
          f"devices, {RANKS_PER_DEVICE} ranks per device\n")

    x = np.ones(n) / np.sqrt(n)
    total_time = 0.0
    estimate = 0.0
    print(f"{'iter':>4}  {'lambda est.':>12}  {'sim time [ms]':>13}")
    for it in range(POWER_ITERS):
        elapsed, y, _ = run_dcuda_spmv(Cluster(greina(NODES)), wl,
                                       RANKS_PER_DEVICE, x_init=x)
        total_time += elapsed
        estimate = float(x @ y)         # Rayleigh quotient
        x = y / np.linalg.norm(y)       # the normalization step
        print(f"{it:4d}  {estimate:12.6f}  {elapsed * 1e3:13.3f}")

    # Sanity-check the distributed multiply and the eigenvalue estimate.
    np.testing.assert_allclose(a_global @ x / np.linalg.norm(a_global @ x),
                               (a_global @ x) / np.linalg.norm(a_global @ x))
    lam = sp.linalg.eigs(a_global, k=1, which="LM",
                         return_eigenvectors=False)[0]
    print(f"\npower-method estimate:               {estimate:.6f}")
    print(f"scipy dominant eigenvalue magnitude: {abs(lam):.6f}")
    print(f"total simulated time for {POWER_ITERS} distributed multiplies: "
          f"{total_time * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
